package serve

// Serve-tier half of the zero-sched freeze: whatever a client does
// short of sending actual scheduler events — omitting the sched key,
// sending an empty list, JSON or SPB1 — the response bytes must be
// identical, and must never contain a combined section. The byte-level
// bulk differential (2048 randomized frames against frozen reference
// encoders) lives in internal/wire; this pins the HTTP layer on top.

import (
	"bytes"
	"encoding/json"
	"testing"

	"spire/internal/core"
	"spire/internal/testutil"
	"spire/internal/wire"
)

// freezeSchedEvents is a minimal valid event stream: one thread runs,
// blocks on a lock, resumes, and switches out.
func freezeSchedEvents() []core.SchedEvent {
	return []core.SchedEvent{
		{Time: 0, Class: "sched.switch_in", Thread: 0, Hart: 0, Waker: -1, Window: -1},
		{Time: 5, Class: "sched.block_lock", Thread: 0, Hart: 0, Obj: "m", Waker: -1, Window: -1},
		{Time: 8, Class: "sched.unblock_lock", Thread: 0, Hart: 0, Obj: "m", Waker: -1, Window: -1},
		{Time: 8, Class: "sched.switch_in", Thread: 0, Hart: 0, Waker: -1, Window: -1},
		{Time: 12, Class: "sched.switch_out", Thread: 0, Hart: 0, Waker: -1, Window: -1},
	}
}

func TestEstimateZeroSchedFreeze(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	samples := testutil.Samples()

	// JSON tier: no sched key vs an explicit empty list.
	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: samples})
	noKey := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status = %d: %s", resp.StatusCode, noKey)
	}
	body, err := json.Marshal(map[string]any{"samples": samples, "sched": []core.SchedEvent{}})
	if err != nil {
		t.Fatal(err)
	}
	resp = postRaw(t, ts.URL+"/v1/estimate", "application/json", "", body)
	emptyKey := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("empty-sched estimate status = %d: %s", resp.StatusCode, emptyKey)
	}
	if !bytes.Equal(noKey, emptyKey) {
		t.Fatalf("empty sched list changed the JSON response:\n%s\nvs\n%s", noKey, emptyKey)
	}
	for _, leak := range []string{`"combined"`, `"sched"`} {
		if bytes.Contains(noKey, []byte(leak)) {
			t.Fatalf("sched-free JSON response leaked %s: %s", leak, noKey)
		}
	}

	// SPB1 tier: the flat binary request's response frame must decode
	// with no combined report and be byte-stable across repeats.
	binReq := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: samples})
	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin, binReq)
	first := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("bin estimate status = %d: %s", resp.StatusCode, first)
	}
	dec, err := wire.DecodeEstimateResponse(first)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Estimation == nil || dec.Estimation.Combined != nil {
		t.Fatalf("sched-free SPB1 response carried a combined section: %+v", dec.Estimation)
	}
	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin, binReq)
	if second := testutil.ReadBody(t, resp); !bytes.Equal(first, second) {
		t.Fatal("identical sched-free binary requests produced different frames")
	}

	// Control: the same samples WITH sched events must produce a
	// combined section on both tiers, and must not collide with the
	// sched-free response in the cache.
	resp = testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: samples, Sched: freezeSchedEvents()})
	withSched := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("sched estimate status = %d: %s", resp.StatusCode, withSched)
	}
	if !bytes.Contains(withSched, []byte(`"combined"`)) {
		t.Fatalf("sched-bearing request produced no combined report: %s", withSched)
	}
	if bytes.Equal(withSched, noKey) {
		t.Fatal("sched-bearing response identical to sched-free response (cache key collision)")
	}
	binSched := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: samples, Sched: freezeSchedEvents()})
	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin, binSched)
	raw := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("bin sched estimate status = %d: %s", resp.StatusCode, raw)
	}
	if dec, err = wire.DecodeEstimateResponse(raw); err != nil {
		t.Fatal(err)
	}
	if dec.Estimation == nil || dec.Estimation.Combined == nil {
		t.Fatal("sched-bearing SPB1 request produced no combined section")
	}
	if dec.Estimation.Combined.Partition.Wall != 12 {
		t.Fatalf("combined wall = %v, want 12", dec.Estimation.Combined.Partition.Wall)
	}
}

// TestEstimateBadSchedRejected: an event stream the analysis cannot use
// (unparseable partition) is a client error, not a silent flat answer.
func TestEstimateBadSchedRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	// Negative time violates SchedEvent.Valid ordering downstream; an
	// event with an unknown class is simply ignored by the graph, which
	// then has zero threads — Combine returns (nil, nil) and the
	// response stays flat rather than erroring.
	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Samples: testutil.Samples(),
		Sched:   []core.SchedEvent{{Time: 1, Class: "sched.not_a_class", Thread: 0, Waker: -1, Window: -1}},
	})
	body := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("unknown-class-only sched status = %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"combined"`)) {
		t.Fatalf("unusable sched events still produced a combined report: %s", body)
	}
}
