package serve

import (
	"container/list"
	"sync"
)

// respCache is a small bounded LRU of marshaled /v1/estimate response
// bodies, keyed by (model ID, workload content hash, top). It backs the
// saturated fast path: when admission sheds a request, a workload whose
// exact response was computed recently under the *current* model can
// still be served — byte-identical to the fresh answer, since estimation
// is deterministic — without touching the estimation path. Including the
// model ID in the key means a hot-swap naturally invalidates everything;
// stale-model entries just age out of the LRU.
type respCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type respEntry struct {
	key  string
	body []byte
}

// newRespCache returns an LRU holding at most capacity response bodies;
// non-positive capacity disables caching.
func newRespCache(capacity int) *respCache {
	return &respCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *respCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*respEntry).body, true
}

func (c *respCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*respEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&respEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*respEntry).key)
	}
}

func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
