package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/testutil"
)

// scrapeCounter extracts one un-labeled counter value from a Prometheus
// text exposition.
func scrapeCounter(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in:\n%s", name, body)
	return 0
}

// TestSoakConcurrentEstimateHotSwap is the serving tier's race gate: 64
// concurrent clients estimate the same workload while a swapper goroutine
// hot-swaps between two models and a poller scrapes /metrics. Every
// response must be exactly the estimation of ONE of the two models (no
// torn reads across the swap), and every scraped counter must be
// monotonic.
func TestSoakConcurrentEstimateHotSwap(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ensA, modelA := testutil.TrainModel(t, 1)
	ensB, modelB := testutil.TrainModel(t, 3)
	idA, err := ensA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := ensB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatal("test models must differ")
	}
	if _, err := s.Models().Load(bytes.NewReader(modelA), "soak"); err != nil {
		t.Fatal(err)
	}

	// The exact estimation each model must produce for the soak workload.
	samples := testutil.Samples()
	ix := core.IndexWorkload(core.Dataset{Samples: samples})
	expected := make(map[string][]byte, 2)
	for id, ens := range map[string]*core.Ensemble{idA: ensA, idB: ensB} {
		est, err := ens.BatchEstimate(context.Background(), ix, core.EstimateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(est)
		if err != nil {
			t.Fatal(err)
		}
		expected[id] = raw
	}
	if bytes.Equal(expected[idA], expected[idB]) {
		t.Fatal("the two models must estimate differently for torn reads to be observable")
	}

	const clients = 64
	iters := 25
	if testing.Short() {
		iters = 5
	}
	reqBody, err := json.Marshal(EstimateRequest{Samples: samples})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Swapper: alternate the served model as fast as uploads complete.
	swaps := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		payloads := [2][]byte{modelB, modelA}
		for i := 0; !stop.Load(); i++ {
			resp, err := http.Post(ts.URL+"/v1/models", "application/json",
				bytes.NewReader(payloads[i%2]))
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("swap %d: status %d", i, resp.StatusCode)
				return
			}
			swaps++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Poller: every scraped counter must be non-decreasing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastServed, lastSwaps float64
		for !stop.Load() {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("metrics scrape: %v", err)
				return
			}
			raw, err := readAll(resp)
			if err != nil {
				t.Errorf("metrics scrape: %v", err)
				return
			}
			served := scrapeCounter(t, string(raw), "spire_estimates_served_total")
			swapped := scrapeCounter(t, string(raw), "spire_model_swaps_total")
			if served < lastServed {
				t.Errorf("spire_estimates_served_total went backwards: %g -> %g", lastServed, served)
				return
			}
			if swapped < lastSwaps {
				t.Errorf("spire_model_swaps_total went backwards: %g -> %g", lastSwaps, swapped)
				return
			}
			lastServed, lastSwaps = served, swapped
			time.Sleep(time.Millisecond)
		}
	}()

	// Clients: every response must match one model exactly.
	var torn atomic.Int64
	var served atomic.Int64
	var clientWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
					bytes.NewReader(reqBody))
				if err != nil {
					t.Errorf("estimate: %v", err)
					return
				}
				body, err := readAll(resp)
				if err != nil {
					t.Errorf("read body: %v", err)
					return
				}
				if resp.StatusCode != 200 {
					t.Errorf("estimate status %d: %s", resp.StatusCode, body)
					return
				}
				var er EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil {
					t.Errorf("bad response: %v", err)
					return
				}
				want, ok := expected[er.Model]
				if !ok {
					t.Errorf("response names unknown model %s", er.Model)
					return
				}
				got, _ := json.Marshal(er.Estimation)
				if !bytes.Equal(got, want) {
					torn.Add(1)
					t.Errorf("torn read: model %s served estimation\n%s\nwant\n%s",
						er.Model, got, want)
					return
				}
				if hdr := resp.Header.Get("X-Spire-Model"); hdr != er.Model {
					t.Errorf("header model %s != body model %s", hdr, er.Model)
					return
				}
				served.Add(1)
			}
		}()
	}
	clientWG.Wait()
	stop.Store(true)
	wg.Wait()

	if torn.Load() > 0 {
		t.Fatalf("%d torn reads", torn.Load())
	}
	want := float64(served.Load())
	if got := s.mEstimates.Value(); got != want {
		t.Errorf("spire_estimates_served_total = %g, want %g", got, want)
	}
	if swaps < 2 {
		t.Errorf("only %d swaps completed; soak did not exercise hot-swapping", swaps)
	}
	t.Logf("soak: %d estimates across %d hot-swaps", served.Load(), swaps)
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
