package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spire/internal/core"
)

// fuzzServer builds one server with a small model for handler fuzzing.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	var d core.Dataset
	for _, metric := range []string{"m1", "m2"} {
		for i := 1; i <= 16; i++ {
			d.Add(core.Sample{Metric: metric, T: 1, W: float64(i), M: float64(17 - i), Window: i})
		}
	}
	ens, err := core.Train(d, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		f.Fatal(err)
	}
	s := New(Config{MaxBodyBytes: 1 << 16})
	if _, err := s.models.Load(&buf, "fuzz"); err != nil {
		f.Fatal(err)
	}
	return s
}

// FuzzEstimateHandler: arbitrary request bodies against POST /v1/estimate
// must never panic the server, must always produce a JSON body, and must
// map to one of the documented status codes.
func FuzzEstimateHandler(f *testing.F) {
	s := fuzzServer(f)

	f.Add([]byte(`{"samples":[{"metric":"m1","t":1,"w":4,"m":2}]}`))
	f.Add([]byte(`{"samples":[{"metric":"m1","t":1,"w":4,"m":2},{"metric":"m2","t":2,"w":9,"m":1}],"top":1,"workers":3}`))
	f.Add([]byte(`{"samples":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"samples": [`))
	f.Add([]byte(`{"samples":[{"metric":"m1","t":1e308,"w":1e308,"m":5e-324}]}`))
	f.Add([]byte(`{"samples":[{"metric":"m1","t":-1,"w":-2,"m":-3,"window":-4}]}`))
	f.Add([]byte(`{"samples":[{"metric":"nope","t":1,"w":1,"m":1}]} trailing`))
	f.Add([]byte(`{"samples":"hello","workers":-99}`))
	f.Add([]byte("\x00\x01\x02"))

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusUnprocessableEntity:   true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("non-JSON content type %q (status %d)", ct, rec.Code)
		}
		var v any
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("status %d response is not JSON: %v\n%s", rec.Code, err, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK {
			var er EstimateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("200 body does not decode as EstimateResponse: %v", err)
			}
			if er.Estimation == nil || len(er.Estimation.PerMetric) == 0 {
				t.Fatal("200 response with empty estimation")
			}
			if math.IsNaN(er.Estimation.MaxThroughput) {
				t.Fatal("200 response with NaN bound")
			}
		}
	})
}

// FuzzModelDecode: arbitrary on-disk model bytes must never panic the
// registry, every rejection must leave the served model untouched, and
// every accepted model must round-trip byte-identically and evaluate
// without panicking — the serialization guarantee the hot-swap relies on.
func FuzzModelDecode(f *testing.F) {
	// A genuine trained model as the structural seed.
	var d core.Dataset
	for i := 1; i <= 12; i++ {
		d.Add(core.Sample{Metric: "seed.metric", T: 2, W: float64(3 * i), M: float64(13 - i)})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"spire-ensemble","version":1,"model":null}`))
	f.Add([]byte(`{"format":"spire-ensemble","version":99,"model":{"rooflines":{}}}`))
	f.Add([]byte(`{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":1,"Y":5},{"X":2,"Y":1}],"tailY":1}}}}`))
	f.Add([]byte(`{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":1e308,"Y":1e308}],"right":[{"X":1e308,"Y":0}],"tailY":-0}}}}`))
	f.Add(bytes.Replace(buf.Bytes(), []byte("1"), []byte("-1"), 3))
	f.Add([]byte("no json"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		reg := NewRegistry("")
		info, err := reg.Load(bytes.NewReader(payload), "fuzz")
		if err != nil {
			if cur, _ := reg.Current(); cur != nil {
				t.Fatal("rejected load still installed a model")
			}
			return
		}
		cur, curInfo := reg.Current()
		if cur == nil || curInfo == nil || curInfo.ID != info.ID {
			t.Fatalf("accepted load did not install: info=%+v current=%+v", info, curInfo)
		}
		// Round-trip guarantee: re-encode, reload, byte-identical.
		var one, two bytes.Buffer
		if err := cur.Save(&one); err != nil {
			t.Fatalf("accepted model does not re-save: %v", err)
		}
		again, err := core.LoadEnsemble(bytes.NewReader(one.Bytes()))
		if err != nil {
			t.Fatalf("accepted model does not reload: %v", err)
		}
		if err := again.Save(&two); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bytes(), two.Bytes()) {
			t.Fatal("accepted model does not round-trip byte-identically")
		}
		// And it must evaluate safely over the whole intensity axis.
		for _, r := range cur.Rooflines {
			for _, x := range []float64{0, 1e-300, 1, 1e300, math.Inf(1)} {
				_ = r.Eval(x)
			}
		}
	})
}
