package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/testutil"
)

// soakWindowDataset reproduces the workload a live window of k soak
// intervals indexes: every interval contributes one m1 and one m2 sample
// with identical values, so the expected estimation depends only on the
// model and on k. Absolute window tags do not change the estimation
// (identical samples collapse under the time-weighted mean and the
// measurement dedup alike), so tags 1..k stand in for whatever interval
// numbers the live window happens to span.
func soakWindowDataset(k int) core.Dataset {
	var d core.Dataset
	for w := 1; w <= k; w++ {
		d.Add(core.Sample{Metric: "m1", T: 100, W: 50, M: 10, Window: w})
		d.Add(core.Sample{Metric: "m2", T: 100, W: 50, M: 7, Window: w})
	}
	return d
}

// TestSoakStreamHotSwap is the streaming tier's race gate: 8 writers
// feed intervals over POST /v1/stream while a swapper hot-swaps between
// two models and 16 SSE clients consume GET /v1/stream. Every window a
// client sees must be internally consistent — sequence numbers strictly
// increasing, bookkeeping matching the window span, and the estimation
// byte-identical to what the window's claimed model produces for its
// interval count (a half-swapped model or a torn index would break
// that). Interval accounting must conserve: every completed interval is
// either windowed or counted as a backpressure drop.
func TestSoakStreamHotSwap(t *testing.T) {
	const (
		windowSpan = 4
		writers    = 8
		sseClients = 16
	)
	perWriter := 40
	if testing.Short() {
		perWriter = 10
	}
	total := writers * perWriter

	s, ts := newTestServer(t, Config{StreamWindow: windowSpan})
	ensA, modelA := testutil.TrainModel(t, 1)
	ensB, modelB := testutil.TrainModel(t, 3)
	idA, err := ensA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := ensB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Models().Load(bytes.NewReader(modelA), "soak"); err != nil {
		t.Fatal(err)
	}

	// expected[model][k] is the exact estimation a window of k intervals
	// must carry when served by that model.
	expected := make(map[string][][]byte, 2)
	for id, ens := range map[string]*core.Ensemble{idA: ensA, idB: ensB} {
		byK := make([][]byte, windowSpan+1)
		for k := 1; k <= windowSpan; k++ {
			ix := core.IndexWorkload(soakWindowDataset(k))
			est, err := ens.BatchEstimate(context.Background(), ix, core.EstimateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if byK[k], err = json.Marshal(est); err != nil {
				t.Fatal(err)
			}
		}
		expected[id] = byK
	}
	if bytes.Equal(expected[idA][windowSpan], expected[idB][windowSpan]) {
		t.Fatal("the two models must estimate differently for torn windows to be observable")
	}

	// Clients subscribe before the first interval so window seq 1 is
	// reachable by everyone; drops can only come from backpressure.
	var mu sync.Mutex
	modelsSeen := make(map[string]bool)
	var maxSeq uint64
	perClient := make([]int, sseClients)
	var clientWG sync.WaitGroup
	for c := 0; c < sseClients; c++ {
		frames, stopSub := sseSubscribe(t, ts.URL, "")
		defer stopSub()
		clientWG.Add(1)
		go func(c int, frames <-chan sseFrame) {
			defer clientWG.Done()
			var last uint64
			for f := range frames {
				if f.Event != "window" || f.ID != f.Result.Seq {
					t.Errorf("client %d: malformed frame %+v", c, f)
					return
				}
				if f.Result.Seq <= last {
					t.Errorf("client %d: seq not strictly increasing: %d then %d", c, last, f.Result.Seq)
					return
				}
				last = f.Result.Seq
				k := windowSpan
				if f.Result.Seq < windowSpan {
					k = int(f.Result.Seq)
				}
				if f.Result.Intervals != k || f.Result.Samples != 2*k {
					t.Errorf("client %d: window %d bookkeeping %d intervals / %d samples, want %d / %d",
						c, f.Result.Seq, f.Result.Intervals, f.Result.Samples, k, 2*k)
					return
				}
				if f.Result.Error != "" || f.Result.Estimation == nil {
					t.Errorf("client %d: window %d carried no estimation: %+v", c, f.Result.Seq, f.Result)
					return
				}
				want, ok := expected[f.Result.Model]
				if !ok {
					t.Errorf("client %d: window %d names unknown model %s", c, f.Result.Seq, f.Result.Model)
					return
				}
				got, err := json.Marshal(f.Result.Estimation)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if !bytes.Equal(got, want[k]) {
					t.Errorf("client %d: torn window %d (model %s):\n%s\nwant\n%s",
						c, f.Result.Seq, f.Result.Model, got, want[k])
					return
				}
				mu.Lock()
				modelsSeen[f.Result.Model] = true
				if f.Result.Seq > maxSeq {
					maxSeq = f.Result.Seq
				}
				perClient[c]++
				mu.Unlock()
			}
		}(c, frames)
	}

	// Swapper: alternate the served model as fast as uploads complete.
	var stop atomic.Bool
	var swapWG sync.WaitGroup
	swaps := 0
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		payloads := [2][]byte{modelB, modelA}
		for i := 0; !stop.Load(); i++ {
			resp, err := http.Post(ts.URL+"/v1/models", "application/json",
				bytes.NewReader(payloads[i%2]))
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("swap %d: status %d", i, resp.StatusCode)
				return
			}
			swaps++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Writers: globally unique timestamps, one complete interval per
	// POST. Arrival order across writers is arbitrary; the stream
	// windows by arrival, so out-of-order timestamps only raise
	// diagnostics.
	var tsCtr atomic.Int64
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				body := streamIntervalCSV(int(tsCtr.Add(1)))
				resp, err := http.Post(ts.URL+"/v1/stream", "text/csv", strings.NewReader(body))
				if err != nil {
					t.Errorf("feed: %v", err)
					return
				}
				raw, err := readAll(resp)
				if err != nil || resp.StatusCode != 200 {
					t.Errorf("feed status %d: %s (%v)", resp.StatusCode, raw, err)
					return
				}
			}
		}()
	}
	writerWG.Wait()

	// Drain: the final interval never completes (nothing arrives after
	// it), so exactly total-1 intervals were enqueued, each of which must
	// end up either windowed or counted as a queue drop. Poll the public
	// counters until the books balance, checking monotonicity on the way.
	deadline := time.Now().Add(60 * time.Second)
	var windows, dropped, lastWindows float64
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := readAll(resp)
		if err != nil {
			t.Fatal(err)
		}
		windows = scrapeCounter(t, string(raw), "spire_stream_windows_total")
		dropped = scrapeCounter(t, string(raw), "spire_stream_windows_dropped_total")
		if windows < lastWindows {
			t.Fatalf("spire_stream_windows_total went backwards: %g -> %g", lastWindows, windows)
		}
		lastWindows = windows
		if windows+dropped >= float64(total-1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream did not drain: windows=%g dropped=%g, want sum %d", windows, dropped, total-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if windows+dropped != float64(total-1) {
		t.Errorf("interval conservation violated: windows=%g + dropped=%g != %d", windows, dropped, total-1)
	}

	stop.Store(true)
	swapWG.Wait()

	// Closing the hub ends every SSE response; clients drain and exit.
	s.Close()
	clientWG.Wait()

	if len(modelsSeen) != 2 {
		t.Errorf("clients saw models %v, want both %s and %s", modelsSeen, idA, idB)
	}
	if maxSeq == 0 || float64(maxSeq) > windows {
		t.Errorf("max observed seq %d inconsistent with %g windows", maxSeq, windows)
	}
	for c, n := range perClient {
		if n == 0 {
			t.Errorf("client %d observed no windows", c)
		}
	}
	if swaps < 2 {
		t.Errorf("only %d swaps completed; soak did not exercise hot-swapping", swaps)
	}
	t.Logf("soak: %g windows (%g dropped) across %d swaps, max seq %d", windows, dropped, swaps, maxSeq)
}
