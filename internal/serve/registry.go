package serve

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spire/internal/core"
)

// ModelInfo is the registry's public description of one model version.
type ModelInfo struct {
	// ID is the content-addressed version: the hex SHA-256 of the model's
	// canonical Save encoding. Equal models share an ID no matter how
	// they arrived.
	ID string `json:"id"`
	// Sequence numbers swaps monotonically: 1 for the first model loaded,
	// incremented on every successful swap (including re-uploads of an
	// earlier model).
	Sequence uint64 `json:"sequence"`
	// Metrics counts the rooflines in the model.
	Metrics int `json:"metrics"`
	// WorkUnit / TimeUnit echo the model's throughput units.
	WorkUnit string `json:"workUnit"`
	TimeUnit string `json:"timeUnit"`
	// Source records where the model came from ("file:<path>", "upload").
	Source string `json:"source"`
	// LoadedAt is when the registry accepted the version.
	LoadedAt time.Time `json:"loadedAt"`
}

// modelVersion pairs a validated immutable ensemble with its info.
type modelVersion struct {
	info ModelInfo
	ens  *core.Ensemble
}

// Registry holds the currently served model and a bounded history of
// accepted versions. Swaps are atomic: estimators load the current
// version with a single atomic pointer read and keep using that immutable
// snapshot for the whole request, so a concurrent swap can never produce
// a torn (half-old, half-new) estimation.
type Registry struct {
	cur     atomic.Pointer[modelVersion]
	mu      sync.Mutex // serializes swaps and history updates
	seq     uint64
	history []ModelInfo // most recent last, bounded
	maxHist int
	dir     string // optional persistence directory ("" = memory only)

	onSwap func(ModelInfo) // optional hook for metrics
}

// NewRegistry returns an empty registry. dir, when non-empty, is where
// accepted uploads are persisted as <id>.json; it is created on demand.
func NewRegistry(dir string) *Registry {
	return &Registry{maxHist: 32, dir: dir}
}

// errModelRejected marks validation failures so handlers can map them to
// 422 instead of 500.
type modelRejectedError struct{ err error }

func (e *modelRejectedError) Error() string { return fmt.Sprintf("model rejected: %v", e.err) }
func (e *modelRejectedError) Unwrap() error { return e.err }

// Current returns the served model version, or nil when none is loaded.
func (r *Registry) Current() (*core.Ensemble, *ModelInfo) {
	mv := r.cur.Load()
	if mv == nil {
		return nil, nil
	}
	info := mv.info
	return mv.ens, &info
}

// History returns the accepted versions, oldest first.
func (r *Registry) History() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ModelInfo(nil), r.history...)
}

// Load decodes, validates and atomically installs a model from src.
// The model must carry the versioned envelope core.Ensemble.Save writes,
// decode cleanly, and satisfy every roofline invariant; anything else is
// rejected with a *modelRejectedError and the served model is untouched.
func (r *Registry) Load(src io.Reader, source string) (*ModelInfo, error) {
	ens, err := core.LoadEnsemble(src)
	if err != nil {
		return nil, &modelRejectedError{err}
	}
	if err := ens.CheckInvariants(); err != nil {
		return nil, &modelRejectedError{err}
	}
	id, err := ens.Fingerprint()
	if err != nil {
		return nil, &modelRejectedError{fmt.Errorf("model is not re-encodable: %w", err)}
	}

	r.mu.Lock()
	r.seq++
	info := ModelInfo{
		ID:       id,
		Sequence: r.seq,
		Metrics:  len(ens.Rooflines),
		WorkUnit: ens.WorkUnit,
		TimeUnit: ens.TimeUnit,
		Source:   source,
		LoadedAt: time.Now().UTC(),
	}
	r.history = append(r.history, info)
	if len(r.history) > r.maxHist {
		r.history = r.history[len(r.history)-r.maxHist:]
	}
	r.cur.Store(&modelVersion{info: info, ens: ens})
	hook := r.onSwap
	r.mu.Unlock()

	if r.dir != "" {
		if err := r.persist(ens, id); err != nil {
			// The swap already happened and the model is good; surface
			// persistence trouble without unserving it.
			return &info, fmt.Errorf("model %s installed but not persisted: %w", shortID(id), err)
		}
	}
	if hook != nil {
		hook(info)
	}
	return &info, nil
}

// LoadFile installs a model from a file on disk.
func (r *Registry) LoadFile(path string) (*ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return r.Load(f, "file:"+filepath.Base(path))
}

// persist writes the canonical encoding to dir/<id>.json atomically
// (temp file + rename).
func (r *Registry) persist(ens *core.Ensemble, id string) error {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(r.dir, id+".json")
	if _, err := os.Stat(final); err == nil {
		return nil // content-addressed: already on disk
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(r.dir, ".model-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// LoadLatestFromDir installs the most recently modified *.json model in
// dir, if any. Used at startup to resume a persisted registry.
func (r *Registry) LoadLatestFromDir() (*ModelInfo, error) {
	if r.dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type cand struct {
		path string
		mod  time.Time
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{path: filepath.Join(r.dir, e.Name()), mod: fi.ModTime()})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mod.Equal(cands[j].mod) {
			return cands[i].mod.After(cands[j].mod)
		}
		return cands[i].path < cands[j].path
	})
	return r.LoadFile(cands[0].path)
}

// shortID abbreviates a fingerprint for log lines.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
