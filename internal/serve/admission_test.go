package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/testutil"
)

// bigWorkload builds a unique (cache-busting) workload of n samples over
// the trainModel metrics, salted by id.
func bigWorkload(n, id int) []core.Sample {
	samples := make([]core.Sample, 0, n)
	for i := 0; i < n; i++ {
		metric := "m1"
		if i%2 == 1 {
			metric = "m2"
		}
		samples = append(samples, core.Sample{
			Metric: metric,
			T:      1,
			W:      float64(1+i%16) + float64(id)/1024,
			M:      float64(1 + (i*7)%16),
			Window: i,
		})
	}
	return samples
}

// estimateStatus posts one estimate request and returns the status code
// and response.
func estimateStatus(t *testing.T, url string, samples []core.Sample, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(EstimateRequest{Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/estimate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, testutil.ReadBody(t, resp)
}

// loadTestModel installs the standard test model and returns its ID.
func loadTestModel(t *testing.T, s *Server) string {
	t.Helper()
	_, model := testutil.TrainModel(t, 1)
	info, err := s.Models().Load(bytes.NewReader(model), "test")
	if err != nil {
		t.Fatal(err)
	}
	return info.ID
}

// TestOverloadShedsWith429 is the overload contract: when offered load
// exceeds the concurrency gate, excess requests get 429 + Retry-After —
// never a 5xx, never unbounded queueing — while at least one request is
// actually served.
func TestOverloadShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent:  1,
		AdmissionQueue: 1,
		QueueWait:      5 * time.Millisecond,
		DegradedCache:  -1,
	})
	loadTestModel(t, s)

	const offered = 24
	type result struct {
		status     int
		retryAfter string
		body       string
	}
	// Marshal every body up front so the goroutines race on the wire,
	// not on encoding.
	bodies := make([][]byte, offered)
	for i := range bodies {
		raw, err := json.Marshal(EstimateRequest{Samples: bigWorkload(20000, i)})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = raw
	}
	results := make([]result, offered)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				t.Error(err)
				return
			}
			body := testutil.ReadBody(t, resp)
			results[i] = result{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
		}(i)
	}
	close(start)
	wg.Wait()

	served, shed := 0, 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			ra, err := strconv.Atoi(r.retryAfter)
			if err != nil || ra < 1 {
				t.Errorf("request %d: 429 with Retry-After %q, want integer >= 1", i, r.retryAfter)
			}
		default:
			t.Errorf("request %d: status %d (%s), want 200 or 429", i, r.status, r.body)
		}
	}
	if served == 0 {
		t.Error("overload run served nothing; the gate should still admit up to capacity")
	}
	if shed == 0 {
		t.Errorf("offered %d against gate 1+queue 1 shed nothing", offered)
	}

	// The books must balance: every request on the route was admitted
	// or rejected with exactly one reason, and the queue is empty.
	metrics := scrapeMetrics(t, ts.URL)
	admitted := metricValue(t, metrics, `spire_admission_admitted_total`)
	rejected := sumMetric(t, metrics, `spire_admission_rejected_total\{reason="[a-z_]+"\}`)
	if int(admitted+rejected) != offered {
		t.Errorf("admitted %g + rejected %g != offered %d\n%s", admitted, rejected, offered, metrics)
	}
	if int(admitted) != served {
		t.Errorf("admitted_total = %g, clients saw %d successes", admitted, served)
	}
	if depth := metricValue(t, metrics, `spire_admission_queue_depth`); depth != 0 {
		t.Errorf("queue_depth = %g at rest, want 0", depth)
	}
}

// scrapeMetrics fetches the full /metrics exposition.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return string(testutil.ReadBody(t, resp))
}

// metricValue extracts one sample whose name (regex) matches exactly.
func metricValue(t *testing.T, exposition, nameRe string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + nameRe + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("no sample matches %q in:\n%s", nameRe, exposition)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// sumMetric sums every sample whose name (regex) matches.
func sumMetric(t *testing.T, exposition, nameRe string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + nameRe + ` ([0-9.e+-]+)$`)
	sum := 0.0
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	return sum
}

// TestDegradedCacheFastPath pins the saturated fast path: with the gate
// fully held, a workload whose exact response is cached is still served
// — byte-identical, marked degraded — while an uncached workload is
// shed.
func TestDegradedCacheFastPath(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent:  1,
		AdmissionQueue: -1, // no waiting room: saturation rejects instantly
	})
	loadTestModel(t, s)
	samples := testutil.Samples()

	// Warm: one normal estimate populates the response cache.
	resp, fresh := estimateStatus(t, ts.URL, samples, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("warm estimate: status %d (%s)", resp.StatusCode, fresh)
	}
	if resp.Header.Get("X-Spire-Degraded") != "" {
		t.Fatal("unsaturated estimate must not be marked degraded")
	}

	// Saturate the gate deterministically by holding its only slot.
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	resp, degraded := estimateStatus(t, ts.URL, samples, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("degraded estimate: status %d (%s)", resp.StatusCode, degraded)
	}
	if got := resp.Header.Get("X-Spire-Degraded"); got != "cache" {
		t.Errorf("X-Spire-Degraded = %q, want \"cache\"", got)
	}
	if !bytes.Equal(fresh, degraded) {
		t.Errorf("degraded response differs from fresh:\n%s\nvs\n%s", degraded, fresh)
	}

	// An uncached workload cannot be degraded-served: shed with 429.
	resp, body := estimateStatus(t, ts.URL, bigWorkload(64, 1), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached workload under saturation: status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	release()
	resp, _ = estimateStatus(t, ts.URL, samples, nil)
	if resp.StatusCode != 200 || resp.Header.Get("X-Spire-Degraded") != "" {
		t.Errorf("post-release estimate: status %d degraded %q, want plain 200",
			resp.StatusCode, resp.Header.Get("X-Spire-Degraded"))
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `spire_estimates_degraded_total`); got != 1 {
		t.Errorf("degraded_total = %g, want 1", got)
	}
}

// TestTenantQuota pins per-tenant isolation and the Retry-After
// contract, across /v1/estimate and the stream routes.
func TestTenantQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{
		TenantRate:  0.001, // effectively no refill within the test
		TenantBurst: 2,
	})
	loadTestModel(t, s)
	samples := testutil.Samples()
	alice := map[string]string{"X-Spire-Tenant": "alice"}

	for i := 0; i < 2; i++ {
		resp, body := estimateStatus(t, ts.URL, samples, alice)
		if resp.StatusCode != 200 {
			t.Fatalf("alice request %d inside burst: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, _ := estimateStatus(t, ts.URL, samples, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice request over burst: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("quota 429 Retry-After = %q, want integer >= 1 (time to next token)", resp.Header.Get("Retry-After"))
	}

	// Unrelated tenants (including the default bucket) are unaffected.
	resp, _ = estimateStatus(t, ts.URL, samples, map[string]string{"X-Spire-Tenant": "bob"})
	if resp.StatusCode != 200 {
		t.Errorf("bob: status %d, want 200", resp.StatusCode)
	}
	resp, _ = estimateStatus(t, ts.URL, samples, nil)
	if resp.StatusCode != 200 {
		t.Errorf("default tenant: status %d, want 200", resp.StatusCode)
	}

	// The drained tenant is rejected on the stream routes too.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stream", nil)
	req.Header.Set("X-Spire-Tenant", "alice")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	testutil.ReadBody(t, sresp)
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("alice stream subscribe: status %d, want 429", sresp.StatusCode)
	}
	freq, _ := http.NewRequest("POST", ts.URL+"/v1/stream", bytes.NewReader(nil))
	freq.Header.Set("X-Spire-Tenant", "alice")
	fresp, err := http.DefaultClient.Do(freq)
	if err != nil {
		t.Fatal(err)
	}
	testutil.ReadBody(t, fresp)
	if fresp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("alice stream feed: status %d, want 429", fresp.StatusCode)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `spire_admission_rejected_total\{reason="quota"\}`); got != 3 {
		t.Errorf(`rejected{quota} = %g, want 3`, got)
	}
}

// TestReadyz pins the /readyz contract: 503 with no model, 200 with one,
// and (exercised in the e2e drain test) 503 once draining.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.Reason != "no model" {
		t.Errorf("empty readyz = %d %+v, want 503 no model", resp.StatusCode, ready)
	}

	id := loadTestModel(t, s)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !ready.Ready || ready.Model != id {
		t.Errorf("readyz with model = %d %+v, want 200 ready model %s", resp.StatusCode, ready, id)
	}

	// Draining flips readiness while healthz stays alive.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Reason != "draining" {
		t.Errorf("draining readyz = %d %+v, want 503 draining", resp.StatusCode, ready)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	testutil.ReadBody(t, hresp)
	if hresp.StatusCode != 200 {
		t.Errorf("healthz while draining = %d, want 200 (alive)", hresp.StatusCode)
	}
}

// TestRespCacheLRU pins the degraded-cache bounds and eviction order.
func TestRespCacheLRU(t *testing.T) {
	c := newRespCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	off := newRespCache(-1)
	off.put("x", []byte("X"))
	if _, ok := off.get("x"); ok {
		t.Error("disabled cache must not store")
	}
}

// TestEstimateMalformedUnderSaturation: a shed request with a garbage
// body is still answered 429 (the retryable contract), not 400.
func TestEstimateMalformedUnderSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, AdmissionQueue: -1})
	loadTestModel(t, s)
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	body := testutil.ReadBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("garbage body under saturation: status %d (%s), want 429", resp.StatusCode, body)
	}
}
