// Package serve is SPIRE's long-running estimation service: the trained
// ensemble behind an HTTP JSON API. It wires the hardened ingestion
// pipeline (internal/ingest) and the parallel batch estimator
// (core.IndexWorkload / BatchEstimate) behind a versioned, atomically
// hot-swappable model registry, a bounded LRU of content-addressed
// workload indexes, and built-in Prometheus-format observability
// (internal/metrics). Every handler enforces a max body size and the
// estimation path runs under a per-request timeout and worker budget, so
// one hostile or huge request cannot starve the service.
//
// Endpoints:
//
//	POST /v1/estimate  workload samples in -> per-metric estimates + ranking out
//	POST /v1/ingest    raw perf-stat CSV / simulator JSON in -> clean samples out
//	POST /v1/stream    feed interval CSV into the live sliding-window stream
//	GET  /v1/stream    Server-Sent Events: one windowed estimation per interval
//	GET  /v1/models    current model version + swap history
//	POST /v1/models    upload, validate and atomically install a model
//	GET  /healthz      liveness + readiness (is a model loaded?)
//	GET  /readyz       load-balancer readiness; flips 503 when draining
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/pprof  optional, Config.EnablePprof
//
// Estimate bodies and stream feeds may use the SPB1 binary wire format
// (internal/wire) instead of JSON/CSV: Content-Type
// application/x-spire-bin selects binary request decoding, Accept
// selects binary estimate responses. Binary is strictly opt-in per
// message and error responses stay JSON.
//
// Overload safety: the estimation path sits behind internal/admission —
// a bounded-concurrency gate with a short deadline-aware wait queue,
// plus optional per-tenant token-bucket quotas (tenant taken from the
// X-Spire-Tenant header, "default" otherwise). Shed requests get 429
// with a Retry-After header, never an unbounded queue; when the gate is
// saturated, a workload whose exact response is in the degraded-mode
// cache is still served (byte-identical, X-Spire-Degraded: cache)
// without touching the estimation path.
//
// The stream endpoints share one hub: every feeder's intervals advance
// the same sliding window, each completed interval is re-estimated
// against the registry's current model (a hot-swap takes effect on the
// next window), and all SSE subscribers observe the same monotone window
// sequence. Backpressure is drop-oldest with counters on both the
// pending-interval queue and each subscriber's buffer (see
// internal/stream).
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"spire/internal/admission"
	"spire/internal/analysis"
	"spire/internal/buildinfo"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/ingest"
	"spire/internal/metrics"
	"spire/internal/stream"
	"spire/internal/wire"
)

// Config tunes the service. The zero value is production-safe: defaults
// are applied by New.
type Config struct {
	// MaxBodyBytes caps every request body. Default 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds the estimation path per request. Default 30s.
	RequestTimeout time.Duration
	// MaxWorkers caps the per-request estimation worker budget; requests
	// asking for more are clamped. Default 0 = GOMAXPROCS (core's own
	// default).
	MaxWorkers int
	// CacheEntries bounds the workload-index LRU. Default 128; negative
	// disables caching.
	CacheEntries int
	// ModelDir, when set, persists accepted model uploads as <id>.json
	// and lets the registry resume the latest one at startup.
	ModelDir string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// StreamWindow is the /v1/stream sliding-window span in intervals.
	// Default stream.DefaultWindowIntervals.
	StreamWindow int
	// StreamMaxPending bounds the stream's pending-interval queue; the
	// oldest pending interval is shed (and counted) when it overflows.
	// Default stream.DefaultMaxPending.
	StreamMaxPending int
	// StreamSubBuffer bounds each SSE subscriber's undelivered results;
	// the oldest is shed (and counted) when it overflows. Default
	// stream.DefaultSubBuffer.
	StreamSubBuffer int

	// MaxConcurrent caps concurrently running estimations (the
	// admission gate). 0 selects the admission default (4×GOMAXPROCS);
	// negative disables the gate.
	MaxConcurrent int
	// AdmissionQueue bounds requests waiting for an estimation slot.
	// 0 selects 8×MaxConcurrent; negative means no waiting room.
	AdmissionQueue int
	// QueueWait caps one request's time in the admission queue.
	// Default 1s.
	QueueWait time.Duration
	// TenantRate enables per-tenant token-bucket quotas at this many
	// requests/second (tenant = X-Spire-Tenant header, "default"
	// otherwise). 0 disables quotas.
	TenantRate float64
	// TenantBurst is the per-tenant burst capacity. 0 selects
	// max(1, 2×TenantRate).
	TenantBurst float64
	// DegradedCache bounds the saturated-mode response cache (exact
	// recent /v1/estimate bodies served when admission sheds a
	// request). Default 64; negative disables the fast path.
	DegradedCache int

	// IdleTimeout closes idle keep-alive connections. Default 120s;
	// negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing any one response. The SSE stream
	// route exempts itself per-request via http.ResponseController.
	// Default RequestTimeout + 30s; negative disables.
	WriteTimeout time.Duration
}

func (c *Config) setDefaults() {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DegradedCache == 0 {
		c.DegradedCache = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = c.RequestTimeout + 30*time.Second
	}
}

// Server is the SPIRE estimation service.
type Server struct {
	cfg      Config
	models   *Registry
	engine   *engine.Engine
	metrics  *metrics.Registry
	handler  http.Handler
	hub      *stream.Hub
	adm      *admission.Controller
	resp     *respCache
	draining atomic.Bool

	mEstimates   *metrics.Counter
	mQuarantined *metrics.Counter
	mIngested    *metrics.Counter
	mSwaps       *metrics.Counter
	mModelSize   *metrics.Gauge
	mInflight    *metrics.Gauge
	mDegraded    *metrics.Counter
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg.setDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		cfg:    cfg,
		models: NewRegistry(cfg.ModelDir),
		// One estimation engine backs both /v1/estimate and the stream
		// re-estimation path: shared worker pool, shared workload-index
		// cache, and its hit/miss counters land on this registry (and so
		// on /metrics).
		engine:  engine.New(engine.Options{CacheEntries: cfg.CacheEntries, Metrics: reg}),
		metrics: reg,

		mEstimates:   reg.Counter("spire_estimates_served_total", "Estimations successfully served."),
		mQuarantined: reg.Counter("spire_quarantined_samples_total", "Samples dropped by validation across ingest and estimate requests."),
		mIngested:    reg.Counter("spire_ingested_samples_total", "Clean samples produced by /v1/ingest."),
		mSwaps:       reg.Counter("spire_model_swaps_total", "Successful model installs/hot-swaps."),
		mModelSize:   reg.Gauge("spire_model_metrics", "Rooflines in the currently served model."),
		mInflight:    reg.Gauge("spire_http_inflight_requests", "Requests currently being handled."),
		mDegraded:    reg.Counter("spire_estimates_degraded_total", "Estimations served from the degraded-mode response cache while the gate was saturated."),
	}
	s.adm = admission.New(admission.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.AdmissionQueue,
		QueueWait:     cfg.QueueWait,
		TenantRate:    cfg.TenantRate,
		TenantBurst:   cfg.TenantBurst,
		Metrics:       reg,
	})
	s.resp = newRespCache(cfg.DegradedCache)
	s.models.onSwap = func(info ModelInfo) {
		s.mSwaps.Inc()
		s.mModelSize.Set(float64(info.Metrics))
	}
	s.hub = stream.NewHub(stream.Config{
		WindowIntervals: cfg.StreamWindow,
		MaxPending:      cfg.StreamMaxPending,
		SubBuffer:       cfg.StreamSubBuffer,
		Model: func() (*core.Ensemble, string) {
			ens, info := s.models.Current()
			if info == nil {
				return nil, ""
			}
			return ens, info.ID
		},
		Metrics: reg,
		Engine:  s.engine,
	})

	mux := http.NewServeMux()
	mux.Handle("POST /v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
	mux.Handle("POST /v1/ingest", s.instrument("/v1/ingest", s.handleIngest))
	mux.Handle("POST /v1/stream", s.instrumentBody("/v1/stream", s.handleStreamPost, false))
	mux.Handle("GET /v1/stream", s.instrument("/v1/stream", s.handleStreamGet))
	mux.Handle("GET /v1/models", s.instrument("/v1/models", s.handleModelsGet))
	mux.Handle("POST /v1/models", s.instrument("/v1/models", s.handleModelsPost))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = mux
	return s
}

// Models exposes the model registry (initial load, tests).
func (s *Server) Models() *Registry { return s.models }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the stream hub, detaching any connected SSE clients. Serve
// does this as part of its drain; call Close directly when the handler
// is mounted some other way (e.g. httptest).
func (s *Server) Close() { s.hub.Close() }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so instrumented handlers can
// stream (SSE requires per-event flushing).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// handlers can reach through the instrumentation to per-request
// controls (the SSE route clears the server-wide write deadline).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the request counter, latency histogram,
// in-flight gauge and the body-size cap.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return s.instrumentBody(route, h, true)
}

// instrumentBody is instrument with the body cap optional. Routes that
// consume their body incrementally with bounded memory (POST /v1/stream:
// chunked reads into a drop-oldest queue) pass capBody=false so a feeder
// really can stream an endless body.
func (s *Server) instrumentBody(route string, h http.HandlerFunc, capBody bool) http.Handler {
	hist := s.metrics.Histogram("spire_http_request_seconds", "Request latency by route.",
		nil, metrics.L("route", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mInflight.Add(1)
		defer s.mInflight.Add(-1)
		if capBody && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		hist.Observe(time.Since(start).Seconds())
		s.metrics.Counter("spire_http_requests_total", "Requests by route and status code.",
			metrics.L("route", route), metrics.L("code", strconv.Itoa(sw.code))).Inc()
	})
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		raw = []byte(`{"error":"response encoding failed"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(raw, '\n'))
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeRaw writes an already-encoded body (the degraded fast path and
// the cached-response producer share exact bytes) under the negotiated
// content type.
func writeRaw(w http.ResponseWriter, code int, raw []byte, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(code)
	w.Write(raw)
}

// isBinMedia reports whether an HTTP media-type header value selects the
// SPB1 binary wire format; error responses are always JSON regardless.
func isBinMedia(v string) bool { return wire.IsBinMedia(v) }

// acceptsBin reports whether the Accept header opts the response into
// SPB1. Absent or anything else (including */*) stays JSON — binary is
// strictly opt-in.
func acceptsBin(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if isBinMedia(part) {
			return true
		}
	}
	return false
}

// writeIfTooBig maps the body-cap error to the uniform 413 response.
// Every route funnels its MaxBytesReader failure through here, so the
// admission layer has a single body-limit choke point. Reports whether
// err was the cap.
func writeIfTooBig(w http.ResponseWriter, err error) bool {
	var tooBig *http.MaxBytesError
	if !errors.As(err, &tooBig) {
		return false
	}
	writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
	return true
}

// decodeQuiet strictly decodes one JSON value from the (size-capped)
// body without writing a response, for paths that decide the status
// themselves (a shed request is answered 429 whether or not its body
// parses).
func decodeQuiet(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the value is a malformed request too.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// defaultTenant is the quota bucket for requests without an explicit
// X-Spire-Tenant header.
const defaultTenant = "default"

// tenantOf extracts the quota tenant from a request.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Spire-Tenant"); t != "" {
		return t
	}
	return defaultTenant
}

// writeRejected answers one admission-shed request: 429 plus the
// Retry-After the client contract (internal/client) honors.
func writeRejected(w http.ResponseWriter, err error) {
	var re *admission.RejectError
	if !errors.As(err, &re) {
		writeErr(w, http.StatusInternalServerError, "admission: %v", err)
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(re.RetryAfter/time.Second)))
	writeErr(w, http.StatusTooManyRequests, "overloaded: %v", re)
}

// EstimateRequest is the /v1/estimate request body. Samples use the
// core.Sample JSON shape ({"metric","t","w","m","window"}).
type EstimateRequest struct {
	Samples []core.Sample `json:"samples"`
	// Top truncates the returned per-metric ranking; 0 returns all.
	Top int `json:"top,omitempty"`
	// Workers requests an estimation worker budget; clamped to the
	// server's MaxWorkers. 0 = server default.
	Workers int `json:"workers,omitempty"`
	// Sched optionally carries the workload's scheduler events; when
	// present the response's estimation includes the combined
	// on-CPU/off-CPU report.
	Sched []core.SchedEvent `json:"sched,omitempty"`
}

// EstimateResponse is the /v1/estimate response body.
type EstimateResponse struct {
	// Model is the serving model's content-addressed version ID.
	Model string `json:"model"`
	// Estimation is the full estimation result; identical to what
	// `spire analyze -json` prints for the same samples and model.
	Estimation *core.Estimation `json:"estimation"`
}

// respKey keys the degraded-mode response cache: same model, same
// workload content hash, same truncation, same wire format, same
// scheduler events -> byte-identical response. schedKey is "" for
// requests without scheduler events, keeping zero-sched keys identical
// to the pre-sched encoding.
func respKey(modelID, workloadKey string, top int, bin bool, schedKey string) string {
	k := modelID + "\x00" + workloadKey + "\x00" + strconv.Itoa(top)
	if bin {
		k += "\x00bin"
	}
	if schedKey != "" {
		k += "\x00" + schedKey
	}
	return k
}

// schedKey content-hashes a scheduler-event list for response-cache
// keying. Empty input returns "".
func schedKey(events []core.SchedEvent) string {
	if len(events) == 0 {
		return ""
	}
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, ev := range events {
		u64(math.Float64bits(ev.Time))
		io.WriteString(h, ev.Class)
		h.Write([]byte{0})
		u64(uint64(int64(ev.Thread)))
		u64(uint64(int64(ev.Hart)))
		io.WriteString(h, ev.Obj)
		h.Write([]byte{0})
		u64(uint64(int64(ev.Waker)))
		u64(uint64(int64(ev.Window)))
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// decodeEstimateRequest decodes the estimate body in whichever wire
// format the request declares: SPB1 when Content-Type is
// application/x-spire-bin, strict JSON otherwise.
func (s *Server) decodeEstimateRequest(r *http.Request) (*EstimateRequest, error) {
	if isBinMedia(r.Header.Get("Content-Type")) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, err
		}
		wreq, err := wire.DecodeEstimateRequest(body)
		if err != nil {
			return nil, err
		}
		return &EstimateRequest{Samples: wreq.Samples, Top: wreq.Top, Workers: wreq.Workers, Sched: wreq.Sched}, nil
	}
	var req EstimateRequest
	if err := decodeQuiet(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	ens, info := s.models.Current()
	if ens == nil {
		writeErr(w, http.StatusServiceUnavailable, "no model loaded; POST one to /v1/models")
		return
	}
	// Admission runs before the body is even read: quota (rate policy,
	// header-only) first, then the concurrency gate. A shed request may
	// still be served from the degraded-mode cache — but never burns
	// estimation compute.
	if err := s.adm.Quota(tenantOf(r)); err != nil {
		writeRejected(w, err)
		return
	}
	release, aerr := s.adm.Acquire(r.Context())
	if aerr != nil {
		s.degradeOrReject(w, r, info.ID, aerr)
		return
	}
	defer release()

	req, derr := s.decodeEstimateRequest(r)
	if derr != nil {
		if !writeIfTooBig(w, derr) {
			writeErr(w, http.StatusBadRequest, "malformed request body: %v", derr)
		}
		return
	}
	if len(req.Samples) == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "no samples in request")
		return
	}

	ix, hit := s.engine.Index(req.Samples)
	if dropped := len(req.Samples) - ix.Len(); dropped > 0 {
		s.mQuarantined.Add(float64(dropped))
	}
	w.Header().Set("X-Spire-Cache", cacheStatus(hit))
	w.Header().Set("X-Spire-Model", info.ID)

	workers := req.Workers
	if workers <= 0 || (s.cfg.MaxWorkers > 0 && workers > s.cfg.MaxWorkers) {
		workers = s.cfg.MaxWorkers
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	est, err := s.engine.EstimateIndexed(ctx, ens, ix, core.EstimateOptions{Workers: workers})
	switch {
	case err == nil:
	case errors.Is(err, core.ErrNoSamples):
		writeErr(w, http.StatusUnprocessableEntity,
			"no sample matches a modeled metric (model has %d metrics)", info.Metrics)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusServiceUnavailable, "estimation timed out after %s", s.cfg.RequestTimeout)
		return
	case errors.Is(err, context.Canceled):
		writeErr(w, http.StatusServiceUnavailable, "request canceled")
		return
	default:
		writeErr(w, http.StatusInternalServerError, "estimation failed: %v", err)
		return
	}
	if req.Top > 0 && req.Top < len(est.PerMetric) {
		est.PerMetric = est.PerMetric[:req.Top]
	}
	// Combined on/off-CPU report: strictly additive — requests without
	// scheduler events get exactly the estimation they always did.
	if len(req.Sched) > 0 {
		combined, cerr := analysis.Combine(est, req.Sched)
		if cerr != nil {
			writeErr(w, http.StatusUnprocessableEntity, "sched events: %v", cerr)
			return
		}
		est.Combined = combined
	}
	var (
		raw []byte
		ct  = "application/json"
	)
	wantBin := acceptsBin(r)
	if wantBin {
		ct = wire.ContentTypeBin
		raw = wire.AppendEstimateResponse(nil, &wire.EstimateResponse{Model: info.ID, Estimation: est})
	} else {
		raw, err = json.Marshal(EstimateResponse{Model: info.ID, Estimation: est})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "response encoding failed")
			return
		}
		raw = append(raw, '\n')
	}
	// Remember the exact bytes for the saturated fast path. Workers
	// are deliberately not part of the key: results are byte-identical
	// for any worker budget.
	s.resp.put(respKey(info.ID, engine.WorkloadKey(req.Samples), req.Top, wantBin, schedKey(req.Sched)), raw)
	s.mEstimates.Inc()
	if h := est.Hierarchy; h != nil {
		// Lazily registered so flat deployments expose exactly the
		// pre-hierarchy /metrics page.
		s.metrics.Counter("spire_hierarchy_binding_level_total",
			"Estimations whose hierarchical verdict named this binding level.",
			metrics.L("level", h.BindingLevel)).Inc()
	}
	writeRaw(w, http.StatusOK, raw, ct)
}

// degradeOrReject answers a request the gate shed: a workload whose
// exact response was recently computed under the current model is served
// from cache (byte-identical, marked X-Spire-Degraded), anything else is
// a 429 with Retry-After.
func (s *Server) degradeOrReject(w http.ResponseWriter, r *http.Request, modelID string, aerr error) {
	if req, err := s.decodeEstimateRequest(r); err == nil && len(req.Samples) > 0 {
		wantBin := acceptsBin(r)
		if raw, ok := s.resp.get(respKey(modelID, engine.WorkloadKey(req.Samples), req.Top, wantBin, schedKey(req.Sched))); ok {
			ct := "application/json"
			if wantBin {
				ct = wire.ContentTypeBin
			}
			w.Header().Set("X-Spire-Model", modelID)
			w.Header().Set("X-Spire-Degraded", "cache")
			s.mDegraded.Inc()
			writeRaw(w, http.StatusOK, raw, ct)
			return
		}
	}
	writeRejected(w, aerr)
}

func cacheStatus(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// IngestResponse is the /v1/ingest response body. Samples is directly
// reusable as the "samples" field of an /v1/estimate request.
type IngestResponse struct {
	Samples     []core.Sample `json:"samples"`
	Stats       ingest.Stats  `json:"stats"`
	Quarantined int           `json:"quarantined"`
	Diags       []ingest.Diag `json:"diags,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	opts := ingest.Options{Mode: ingest.Lenient}
	q := r.URL.Query()
	if mode := q.Get("mode"); mode != "" {
		switch mode {
		case "lenient":
		case "strict":
			opts.Mode = ingest.Strict
		default:
			writeErr(w, http.StatusBadRequest, "unknown mode %q (want lenient or strict)", mode)
			return
		}
	}
	if pct := q.Get("min_run_pct"); pct != "" {
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil || v < 0 || v > 100 {
			writeErr(w, http.StatusBadRequest, "bad min_run_pct %q", pct)
			return
		}
		opts.MinRunPct = v
	}
	res, err := ingest.Read(r.Body, opts)
	if res != nil {
		s.mQuarantined.Add(float64(res.Validation.Quarantined))
	}
	if err != nil {
		if writeIfTooBig(w, err) {
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "ingest failed: %v", err)
		return
	}
	s.mIngested.Add(float64(res.Dataset.Len()))
	writeJSON(w, http.StatusOK, IngestResponse{
		Samples:     res.Dataset.Samples,
		Stats:       res.Stats,
		Quarantined: res.Validation.Quarantined,
		Diags:       res.Diags,
	})
}

// ModelsResponse is the GET /v1/models response body.
type ModelsResponse struct {
	Current *ModelInfo  `json:"current,omitempty"`
	History []ModelInfo `json:"history,omitempty"`
}

func (s *Server) handleModelsGet(w http.ResponseWriter, r *http.Request) {
	_, info := s.models.Current()
	writeJSON(w, http.StatusOK, ModelsResponse{Current: info, History: s.models.History()})
}

func (s *Server) handleModelsPost(w http.ResponseWriter, r *http.Request) {
	info, err := s.models.Load(r.Body, "upload")
	if err != nil {
		var rejected *modelRejectedError
		switch {
		case writeIfTooBig(w, err):
		case errors.As(err, &rejected):
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		default:
			// Installed but e.g. not persisted: the swap happened.
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// HealthResponse is the GET /healthz response body.
type HealthResponse struct {
	Status string `json:"status"`
	// Ready reports whether a model is loaded and estimations can be
	// served.
	Ready bool `json:"ready"`
	// Model is the served model ID, when ready.
	Model string `json:"model,omitempty"`
	// Version is the spire release version the process was built from.
	Version string `json:"version"`
	// Revision is the VCS revision, when the build was stamped.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthResponse{
		Status:    "ok",
		Version:   buildinfo.Version,
		Revision:  buildinfo.Revision(),
		GoVersion: buildinfo.GoVersion(),
	}
	if _, info := s.models.Current(); info != nil {
		h.Ready = true
		h.Model = info.ID
	}
	writeJSON(w, http.StatusOK, h)
}

// ReadyResponse is the GET /readyz response body.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason explains a not-ready answer ("draining", "no model").
	Reason string `json:"reason,omitempty"`
	// Model is the served model ID, when ready.
	Model string `json:"model,omitempty"`
}

// handleReadyz is the load-balancer contract: 200 while this instance
// should receive traffic, 503 the moment a drain begins — before the
// listener stops accepting — or while no model is loaded. /healthz stays
// 200 throughout a drain (the process is alive and finishing work).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: "draining"})
		return
	}
	_, info := s.models.Current()
	if info == nil {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: "no model"})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Ready: true, Model: info.ID})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Render(w)
}

// Serve runs the service on ln until ctx is canceled, then drains
// in-flight requests for up to drain before returning. A clean drain
// returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	idle, write := s.cfg.IdleTimeout, s.cfg.WriteTimeout
	if idle < 0 {
		idle = 0
	}
	if write < 0 {
		write = 0
	}
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// IdleTimeout reclaims abandoned keep-alive connections;
		// WriteTimeout bounds every response write so a stalled reader
		// cannot pin a handler forever. The SSE stream route clears its
		// own write deadline per-request (http.ResponseController) so
		// long-lived feeds survive.
		IdleTimeout:  idle,
		WriteTimeout: write,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.hub.Close()
		return err
	case <-ctx.Done():
	}
	// Flip /readyz first, before the listener stops accepting, so load
	// balancers stop routing new work here while in-flight requests
	// still complete.
	s.draining.Store(true)
	// Detach SSE clients next: Shutdown waits for in-flight handlers,
	// and stream handlers only return once the hub releases them.
	s.hub.Close()
	if drain <= 0 {
		drain = 10 * time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
