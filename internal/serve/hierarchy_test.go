package serve

// Serve-tier tests for the hierarchical roofline surface: the binding
// level rides /v1/estimate additively (JSON and SPB1), shows up in
// /metrics only when hierarchical verdicts are actually served, and the
// single-level degenerate case serves estimation bytes identical to a
// flat model's.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"spire/internal/core"
	"spire/internal/testutil"
	"spire/internal/wire"
)

// hierModelBytes builds a four-level hierarchical model and its JSON
// encoding. levels trims the hierarchy (1 = degenerate single level).
func hierModelBytes(t *testing.T, levels int) (*core.Ensemble, []byte) {
	t.Helper()
	betas := map[string]float64{"L1": 64, "L2": 16, "L3": 8, "DRAM": 2}
	ens := &core.Ensemble{
		Rooflines: map[string]*core.Roofline{},
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
	}
	all := core.DefaultHierarchyLevels()
	for _, lv := range all {
		r, err := core.BandwidthRoofline(lv.Metric, 4, betas[lv.Level], 64)
		if err != nil {
			t.Fatal(err)
		}
		ens.Rooflines[lv.Metric] = r
	}
	if levels > 0 {
		ens.Hierarchy = &core.HierarchyModel{Levels: all[:levels]}
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return ens, buf.Bytes()
}

// hierSamples puts dominant traffic on L2 and a trickle elsewhere.
func hierSamples() []core.Sample {
	const cycles, insts = 1e6, 2e6
	return []core.Sample{
		{Metric: "mem_load_retired.l1_hit", T: cycles, W: insts, M: 1000},
		{Metric: "mem_load_retired.l2_hit", T: cycles, W: insts, M: 4e5},
		{Metric: "mem_load_retired.l3_hit", T: cycles, W: insts, M: 100},
		{Metric: "mem_load_retired.l3_miss", T: cycles, W: insts, M: 10},
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeHierarchyEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := hierModelBytes(t, 4)
	if _, err := s.Models().Load(bytes.NewReader(model), "hier"); err != nil {
		t.Fatal(err)
	}

	// Before any hierarchical estimate, /metrics must not expose the
	// binding-level counter at all.
	page := testutil.ReadBody(t, mustGet(t, ts.URL+"/metrics"))
	if strings.Contains(string(page), "spire_hierarchy_binding_level_total") {
		t.Error("binding-level counter exposed before any hierarchical estimate")
	}

	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: hierSamples()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, testutil.ReadBody(t, resp))
	}
	var er EstimateResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	h := er.Estimation.Hierarchy
	if h == nil || h.BindingLevel != "L2" || h.BindingMetric != "mem_load_retired.l2_hit" {
		t.Fatalf("JSON hierarchy %+v, want binding L2", h)
	}
	if len(h.Levels) != 4 {
		t.Fatalf("JSON hierarchy has %d levels", len(h.Levels))
	}

	// The SPB1 route carries the same verdict.
	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin,
		binEstimateBody(hierSamples()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bin status %d", resp.StatusCode)
	}
	bres, err := wire.DecodeEstimateResponse(testutil.ReadBody(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	bh := bres.Estimation.Hierarchy
	if bh == nil || bh.BindingLevel != "L2" {
		t.Fatalf("SPB1 hierarchy %+v, want binding L2", bh)
	}
	bj, _ := json.Marshal(bres.Estimation)
	jj, _ := json.Marshal(er.Estimation)
	if !bytes.Equal(bj, jj) {
		t.Errorf("SPB1 and JSON estimations diverge:\n%s\nvs\n%s", bj, jj)
	}

	// Two hierarchical estimates served: the counter exists with the
	// binding level as its label.
	page = testutil.ReadBody(t, mustGet(t, ts.URL+"/metrics"))
	if !strings.Contains(string(page), `spire_hierarchy_binding_level_total{level="L2"} 2`) {
		t.Errorf("metrics page missing binding-level counter:\n%s", page)
	}
}

// TestServeSingleLevelParity: a model whose hierarchy has one level must
// serve estimation payloads byte-identical to the flat model, on both
// encodings.
func TestServeSingleLevelParity(t *testing.T) {
	sFlat, tsFlat := newTestServer(t, Config{})
	_, flatModel := hierModelBytes(t, 0)
	if _, err := sFlat.Models().Load(bytes.NewReader(flatModel), "flat"); err != nil {
		t.Fatal(err)
	}
	sOne, tsOne := newTestServer(t, Config{})
	_, oneModel := hierModelBytes(t, 1)
	if _, err := sOne.Models().Load(bytes.NewReader(oneModel), "one"); err != nil {
		t.Fatal(err)
	}

	// JSON estimation payloads match byte for byte.
	var bodies [2]*EstimateResponse
	for i, url := range []string{tsFlat.URL, tsOne.URL} {
		resp := testutil.PostJSON(t, url+"/v1/estimate", EstimateRequest{Samples: hierSamples()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d status %d", i, resp.StatusCode)
		}
		var er EstimateResponse
		if err := json.Unmarshal(testutil.ReadBody(t, resp), &er); err != nil {
			t.Fatal(err)
		}
		bodies[i] = &er
	}
	fj, _ := json.Marshal(bodies[0].Estimation)
	oj, _ := json.Marshal(bodies[1].Estimation)
	if !bytes.Equal(fj, oj) {
		t.Errorf("single-level JSON estimation diverged from flat:\n%s\nvs\n%s", oj, fj)
	}
	if bodies[1].Estimation.Hierarchy != nil {
		t.Error("single-level model served a hierarchy")
	}

	// SPB1: the estimation frame regions must be byte-identical, so
	// re-encoding both estimations into fresh frames matches exactly.
	var frames [2][]byte
	for i, url := range []string{tsFlat.URL, tsOne.URL} {
		resp := postRaw(t, url+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin,
			binEstimateBody(hierSamples()))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d bin status %d", i, resp.StatusCode)
		}
		res, err := wire.DecodeEstimateResponse(testutil.ReadBody(t, resp))
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = wire.AppendEstimateResponse(nil, &wire.EstimateResponse{Estimation: res.Estimation})
	}
	if !bytes.Equal(frames[0], frames[1]) {
		t.Error("single-level SPB1 estimation bytes diverged from flat")
	}

	// The single-level server never serves hierarchical verdicts, so its
	// metrics page stays free of the binding-level counter.
	page := testutil.ReadBody(t, mustGet(t, tsOne.URL+"/metrics"))
	if strings.Contains(string(page), "spire_hierarchy_binding_level_total") {
		t.Error("single-level server exposed the binding-level counter")
	}
}

// TestServeHierarchyModelValidation: a model upload with a structurally
// invalid hierarchy is rejected.
func TestServeHierarchyModelValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ens, _ := hierModelBytes(t, 4)
	ens.Hierarchy.Levels = append(ens.Hierarchy.Levels, ens.Hierarchy.Levels[0])
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Models().Load(&buf, "dup"); err == nil {
		t.Error("duplicate hierarchy level accepted by model load")
	}
}
