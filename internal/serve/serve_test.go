package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/testutil"
)

// Model training, canned workloads and the HTTP helpers live in
// internal/testutil, shared with the client, cluster and e2e suites.

// newTestServer builds a server plus its httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := testutil.StartHTTP(t, s.Handler())
	t.Cleanup(s.Close) // detach SSE clients before the listener closes
	return s, ts
}

func TestHealthzReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || h.Status != "ok" || h.Ready {
		t.Errorf("empty server healthz = %d %+v, want 200 ok not-ready", resp.StatusCode, h)
	}

	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Model == "" {
		t.Errorf("healthz after model load = %+v, want ready with model ID", h)
	}
}

func TestEstimateNoModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: testutil.Samples()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	var e errorBody
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &e); err != nil || e.Error == "" {
		t.Errorf("503 body must be a JSON error, got err=%v body=%+v", err, e)
	}
}

// TestEstimateParityAndCache: the endpoint must agree exactly with a
// direct BatchEstimate, repeated identical requests must be byte-stable
// and served from the index cache.
func TestEstimateParityAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ens, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}

	samples := testutil.Samples()
	want, err := ens.BatchEstimate(context.Background(),
		core.IndexWorkload(core.Dataset{Samples: samples}), core.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: samples})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, testutil.ReadBody(t, resp))
	}
	if got := resp.Header.Get("X-Spire-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	first := testutil.ReadBody(t, resp)
	var er EstimateResponse
	if err := json.Unmarshal(first, &er); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(er.Estimation)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("served estimation differs from direct BatchEstimate:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if er.Model == "" {
		t.Error("response missing model ID")
	}

	// Identical request: byte-identical response, cache hit.
	resp = testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: samples})
	if got := resp.Header.Get("X-Spire-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	second := testutil.ReadBody(t, resp)
	if !bytes.Equal(first, second) {
		t.Error("identical requests produced different bodies")
	}
	hits := s.metrics.Counter("spire_estimate_cache_hits_total", "").Value()
	misses := s.metrics.Counter("spire_estimate_cache_misses_total", "").Value()
	if hits != 1 || misses != 1 {
		t.Errorf("cache counters hits=%g misses=%g, want 1/1", hits, misses)
	}
	if s.mEstimates.Value() != 2 {
		t.Errorf("estimates served = %g, want 2", s.mEstimates.Value())
	}
	// The invalid + unmatched samples were counted as quarantined once
	// (indexing drops only the invalid one on each request; the counter
	// increments per request that dropped).
	if s.mQuarantined.Value() == 0 {
		t.Error("dropped invalid sample not reflected in quarantine counter")
	}
}

func TestEstimateRequestErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/estimate"

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{"samples": [`, 400},
		{"trailing", `{"samples":[{"metric":"m1","t":1,"w":1,"m":1}]} garbage`, 400},
		{"empty", `{}`, 422},
		{"no samples", `{"samples":[]}`, 422},
		{"no overlap", `{"samples":[{"metric":"nope","t":1,"w":1,"m":1}]}`, 422},
		{"wrong types", `{"samples":"hello"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := testutil.ReadBody(t, resp)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, tc.want, body)
			}
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body is not JSON: %s", body)
			}
		})
	}

	// Oversized body -> 413.
	huge := `{"samples":[` + strings.Repeat(`{"metric":"m1","t":1,"w":1,"m":1},`, 100)
	huge += `{"metric":"m1","t":1,"w":1,"m":1}]}`
	resp, err := http.Post(url, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
	testutil.ReadBody(t, resp)

	// GET on a POST route is a 405 from the mux.
	getResp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/estimate = %d, want 405", getResp.StatusCode)
	}
	testutil.ReadBody(t, getResp)
}

func TestEstimateTopAndWorkers(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxWorkers: 2})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		Samples: testutil.Samples(), Top: 1, Workers: 1 << 20, // absurd budget is clamped
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var er EstimateResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Estimation.PerMetric) != 1 {
		t.Errorf("top=1 returned %d metrics", len(er.Estimation.PerMetric))
	}
}

const ingestCSV = `# started on Wed Aug  5 14:02:11 2026
1.000611541,3108802065,,cycles,1000000000,100.00,,
1.000611541,3661935590,,instructions,1000000000,100.00,,
1.000611541,12807099,,longest_lat_cache.miss,241738776,24.84,,
2.000535953,3146324599,,cycles,1000000000,100.00,,
2.000535953,4511569024,,instructions,1000000000,100.00,,
2.000535953,<not counted>,,longest_lat_cache.miss,0,0.00,,
garbled line that cannot parse
`

func TestIngestEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/ingest"

	resp, err := http.Post(url, "text/csv", strings.NewReader(ingestCSV))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("lenient ingest status = %d: %s", resp.StatusCode, testutil.ReadBody(t, resp))
	}
	var ir IngestResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Samples) != 1 {
		t.Errorf("ingested %d samples, want 1 (one metric row with both fixed counters)", len(ir.Samples))
	}
	if ir.Stats.Intervals != 2 {
		t.Errorf("intervals = %d, want 2", ir.Stats.Intervals)
	}
	if len(ir.Diags) == 0 {
		t.Error("garbled + not-counted rows should produce diagnostics")
	}
	if s.mIngested.Value() != 1 {
		t.Errorf("ingested counter = %g, want 1", s.mIngested.Value())
	}

	// Strict mode aborts on the garbled line.
	resp, err = http.Post(url+"?mode=strict", "text/csv", strings.NewReader(ingestCSV))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("strict ingest status = %d, want 422", resp.StatusCode)
	}
	testutil.ReadBody(t, resp)

	// Parameter validation.
	for _, bad := range []string{"?mode=wild", "?min_run_pct=oops", "?min_run_pct=123"} {
		resp, err := http.Post(url+bad, "text/csv", strings.NewReader(ingestCSV))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, resp.StatusCode)
		}
		testutil.ReadBody(t, resp)
	}

	// The ingest response samples feed straight into /v1/estimate once a
	// covering model is loaded.
	var d core.Dataset
	for w := 1; w <= 8; w++ {
		d.Add(core.Sample{Metric: "longest_lat_cache.miss", T: 1e9, W: float64(w) * 1e9, M: 2e7, Window: w})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Models().Load(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	resp = testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: ir.Samples})
	if resp.StatusCode != 200 {
		t.Errorf("estimate over ingested samples = %d: %s", resp.StatusCode, testutil.ReadBody(t, resp))
	} else {
		testutil.ReadBody(t, resp)
	}
}

func TestModelRegistryUploadSwapPersist(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{ModelDir: dir})
	url := ts.URL + "/v1/models"

	// No model yet.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Current != nil || len(mr.History) != 0 {
		t.Errorf("fresh registry = %+v, want empty", mr)
	}

	_, modelA := testutil.TrainModel(t, 1)
	_, modelB := testutil.TrainModel(t, 3)

	// Upload A.
	resp, err = http.Post(url, "application/json", bytes.NewReader(modelA))
	if err != nil {
		t.Fatal(err)
	}
	var infoA ModelInfo
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &infoA); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || infoA.Sequence != 1 || infoA.Metrics != 2 {
		t.Fatalf("upload A = %d %+v", resp.StatusCode, infoA)
	}
	// Persisted content-addressed.
	if _, err := os.Stat(filepath.Join(dir, infoA.ID+".json")); err != nil {
		t.Errorf("model A not persisted: %v", err)
	}

	// Upload B: hot-swap.
	resp, err = http.Post(url, "application/json", bytes.NewReader(modelB))
	if err != nil {
		t.Fatal(err)
	}
	var infoB ModelInfo
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &infoB); err != nil {
		t.Fatal(err)
	}
	if infoB.Sequence != 2 || infoB.ID == infoA.ID {
		t.Fatalf("upload B = %+v (A was %+v)", infoB, infoA)
	}
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Current == nil || mr.Current.ID != infoB.ID || len(mr.History) != 2 {
		t.Errorf("after swap: %+v", mr)
	}
	if s.mSwaps.Value() != 2 {
		t.Errorf("swap counter = %g, want 2", s.mSwaps.Value())
	}

	// Rejections: garbage, wrong envelope, structurally bad model.
	for name, payload := range map[string]string{
		"garbage":  "not json at all",
		"envelope": `{"format":"other","version":1,"model":{}}`,
		"invalid":  `{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":2,"Y":5},{"X":1,"Y":9}],"tailY":1}}}}`,
	} {
		resp, err := http.Post(url, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s upload status = %d, want 422", name, resp.StatusCode)
		}
		testutil.ReadBody(t, resp)
	}
	// Served model untouched by the rejected uploads.
	if _, info := s.Models().Current(); info.ID != infoB.ID {
		t.Error("rejected upload displaced the served model")
	}

	// A fresh registry resumes the newest persisted model.
	r2 := NewRegistry(dir)
	resumed, err := r2.LoadLatestFromDir()
	if err != nil {
		t.Fatal(err)
	}
	if resumed == nil {
		t.Fatal("LoadLatestFromDir found nothing")
	}
	if resumed.ID != infoA.ID && resumed.ID != infoB.ID {
		t.Errorf("resumed unknown model %s", resumed.ID)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	testutil.ReadBody(t, testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: testutil.Samples()}))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body := string(testutil.ReadBody(t, resp))
	for _, want := range []string{
		"spire_estimates_served_total 1",
		"spire_model_swaps_total 1",
		"spire_model_metrics 2",
		`spire_http_requests_total{code="200",route="/v1/estimate"} 1`,
		`spire_http_request_seconds_count{route="/v1/estimate"} 1`,
		"spire_estimate_cache_misses_total 1",
		// The admission instruments render from the first scrape — all
		// three rejection reasons, the queue-depth gauge, and the
		// degraded-serve counter — in the exact exposition shape the
		// dashboards key on.
		"# TYPE spire_admission_rejected_total counter",
		`spire_admission_rejected_total{reason="deadline"} 0`,
		`spire_admission_rejected_total{reason="queue_full"} 0`,
		`spire_admission_rejected_total{reason="quota"} 0`,
		"# TYPE spire_admission_queue_depth gauge",
		"spire_admission_queue_depth 0",
		"spire_admission_admitted_total 1",
		"spire_admission_inflight 0",
		"spire_estimates_degraded_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServeGracefulDrain(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln, 5*time.Second) }()

	url := fmt.Sprintf("http://%s/healthz", ln.Addr())
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	testutil.ReadBody(t, resp)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drain returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

func TestPprofGate(t *testing.T) {
	_, tsOff := newTestServer(t, Config{})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == 200 {
		t.Error("pprof must be off by default")
	}
	testutil.ReadBody(t, resp)

	_, tsOn := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}
	testutil.ReadBody(t, resp)
}
