package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/testutil"
)

// BenchmarkAdmissionSaturated measures the serving tier under saturated
// offered load: more concurrent callers than the gate has slots, so
// every request either runs an estimation or is shed with 429 in
// admission-path time. ns/op is the caller-observed time per offered
// request; served_per_sec and shed/op are the useful planning numbers —
// how much estimation throughput survives saturation and what fraction
// of offered load pays only the (cheap) rejection path.
// BENCH_admission.json records the baseline.
func BenchmarkAdmissionSaturated(b *testing.B) {
	s, ts := newBenchServer(b, Config{
		MaxConcurrent:  1,
		AdmissionQueue: 1,
		QueueWait:      time.Millisecond,
		DegradedCache:  -1,
	})
	_, model := testutil.TrainModel(b, 1)
	if _, err := s.models.Load(bytes.NewReader(model), "bench"); err != nil {
		b.Fatal(err)
	}

	// A rotation of distinct pre-marshaled workloads defeats the
	// workload-index cache just like real mixed traffic. 20000 samples
	// keeps each admitted estimation on-CPU long enough that competing
	// handlers actually observe a saturated gate (this matters on
	// single-CPU runners, where tiny estimates serialize and nothing
	// ever sheds).
	const distinct = 8
	bodies := make([][]byte, distinct)
	for i := range bodies {
		raw, err := json.Marshal(EstimateRequest{Samples: bigWorkload(20000, i)})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}

	var served, shed, other atomic.Int64
	var seq atomic.Int64
	b.SetParallelism(32) // 32×GOMAXPROCS callers against 1 slot: saturated
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
				bytes.NewReader(bodies[int(i)%distinct]))
			if err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}
	})
	b.StopTimer()
	if other.Load() > 0 {
		b.Fatalf("%d responses were neither 200 nor 429", other.Load())
	}
	total := served.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(shed.Load())/float64(total), "shed/op")
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(served.Load())/el, "served_per_sec")
	}
}

// newBenchServer mirrors newTestServer for benchmarks.
func newBenchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(s.Close)
	return s, ts
}
