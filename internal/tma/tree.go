package tma

import (
	"fmt"
	"io"
	"strings"

	"spire/internal/pmu"
)

// Node is one category of the Top-Down hierarchy: a fraction of the
// parent's share attributed to this cause, with optional sub-categories.
// Fractions are absolute (of total slots/cycles), so a child's Value is
// always <= its parent's.
type Node struct {
	Name     string
	Value    float64
	Children []*Node
}

// Find returns the descendant with the given name (depth first), or nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// Tree computes the multi-level Top-Down hierarchy from a counter
// snapshot. Level 1 matches Analyze; levels 2-3 apportion each category
// to more specific causes using the same counters VTune's TMA derives its
// sub-trees from:
//
//	retiring        -> light operations | microcode sequencer
//	front-end bound -> fetch latency (icache, ms-switches) | fetch bandwidth (dsb->mite)
//	bad speculation -> branch mispredicts | machine clears
//	back-end bound  -> memory bound -> l1 | l2 | l3 | dram | stores
//	                -> core bound   -> divider | ports utilization
func Tree(c pmu.Counts, issueWidth int) (*Node, error) {
	b, err := Analyze(c, issueWidth)
	if err != nil {
		return nil, err
	}
	// The level-1 formulas can overlap slightly (recovery cycles and
	// delivery shortfalls are measured independently); normalize so the
	// tree is a proper decomposition of the slot budget.
	if total := b.Retiring + b.FrontEnd + b.BadSpeculation + b.BackEnd; total > 1 {
		b.Retiring /= total
		b.FrontEnd /= total
		b.BadSpeculation /= total
		b.BackEnd /= total
		b.MemoryBound /= total
		b.CoreBound /= total
	} else if total < 1 {
		// Attribute any unaccounted remainder to the back end's core
		// side, the conservative default.
		b.BackEnd += 1 - total
		b.CoreBound += 1 - total
	}

	root := &Node{Name: "slots", Value: 1}

	// --- retiring ------------------------------------------------------
	ret := &Node{Name: "retiring", Value: b.Retiring}
	msUops := float64(c.Read(pmu.EvMSUops))
	retUops := float64(c.Read(pmu.EvUopsRetiredSlots))
	heavy := 0.0
	if retUops > 0 {
		heavy = b.Retiring * minf(1, msUops/retUops)
	}
	ret.Children = []*Node{
		{Name: "light-ops", Value: b.Retiring - heavy},
		{Name: "microcode-sequencer", Value: heavy},
	}

	// --- front-end bound -------------------------------------------------
	fe := &Node{Name: "front-end-bound", Value: b.FrontEnd}
	// Latency: cycles fetch produced nothing (icache stalls, MS switch
	// bubbles); bandwidth: cycles fetch delivered but below machine
	// width. Apportion the level-1 share by those cycle counts.
	icStall := float64(c.Read(pmu.EvICacheStall))
	msSwitch := float64(c.Read(pmu.EvMSSwitches)) * 2 // penalty cycles
	d2m := float64(c.Read(pmu.EvDSB2MITESwitchCycles))
	le3 := float64(c.Read(pmu.EvUopsNotDeliveredLE3))
	latencyCy := icStall + msSwitch
	bandwidthCy := maxf(0, le3-latencyCy) + d2m
	totalCy := latencyCy + bandwidthCy
	if totalCy > 0 {
		fe.Children = []*Node{
			{Name: "fetch-latency", Value: b.FrontEnd * latencyCy / totalCy},
			{Name: "fetch-bandwidth", Value: b.FrontEnd * bandwidthCy / totalCy},
		}
	}

	// --- bad speculation -------------------------------------------------
	bs := &Node{Name: "bad-speculation", Value: b.BadSpeculation}
	misp := float64(c.Read(pmu.EvBrMispRetired))
	clears := float64(c.Read(pmu.EvMachineClears))
	if misp+clears > 0 {
		bs.Children = []*Node{
			{Name: "branch-mispredicts", Value: b.BadSpeculation * misp / (misp + clears)},
			{Name: "machine-clears", Value: b.BadSpeculation * clears / (misp + clears)},
		}
	}

	// --- back-end bound ---------------------------------------------------
	be := &Node{Name: "back-end-bound", Value: b.BackEnd}
	memN := &Node{Name: "memory-bound", Value: b.MemoryBound}
	coreN := &Node{Name: "core-bound", Value: b.CoreBound}
	be.Children = []*Node{memN, coreN}

	// Memory level 3: split stalled-with-memory cycles by the deepest
	// outstanding miss level, plus store-buffer pressure.
	l1 := maxf(0, float64(c.Read(pmu.EvStallsMemAny))-float64(c.Read(pmu.EvStallsL1DMiss)))
	l2 := maxf(0, float64(c.Read(pmu.EvStallsL1DMiss))-float64(c.Read(pmu.EvStallsL2Miss)))
	l3 := maxf(0, float64(c.Read(pmu.EvStallsL2Miss))-float64(c.Read(pmu.EvStallsL3Miss)))
	dram := float64(c.Read(pmu.EvStallsL3Miss))
	sb := float64(c.Read(pmu.EvResourceStallsSB))
	memTot := l1 + l2 + l3 + dram + sb
	if memTot > 0 {
		memN.Children = []*Node{
			{Name: "l1-bound", Value: b.MemoryBound * l1 / memTot},
			{Name: "l2-bound", Value: b.MemoryBound * l2 / memTot},
			{Name: "l3-bound", Value: b.MemoryBound * l3 / memTot},
			{Name: "dram-bound", Value: b.MemoryBound * dram / memTot},
			{Name: "store-bound", Value: b.MemoryBound * sb / memTot},
		}
	}

	// Core level 3: divider vs port under-utilization.
	div := float64(c.Read(pmu.EvDividerActive))
	p01 := float64(c.Read(pmu.EvExeBound0Ports)) + float64(c.Read(pmu.EvExe1PortUtil))
	coreTot := div + p01
	if coreTot > 0 {
		coreN.Children = []*Node{
			{Name: "divider", Value: b.CoreBound * div / coreTot},
			{Name: "ports-utilization", Value: b.CoreBound * p01 / coreTot},
		}
	}

	root.Children = []*Node{ret, fe, bs, be}
	return root, nil
}

// CheckTree verifies the structural invariants: children sum to their
// parent (within tolerance) wherever children exist, and all values lie
// in [0, 1].
func CheckTree(n *Node) error {
	if n.Value < -1e-9 || n.Value > 1+1e-9 {
		return fmt.Errorf("tma: node %s value %g out of [0,1]", n.Name, n.Value)
	}
	if len(n.Children) > 0 {
		var sum float64
		for _, c := range n.Children {
			sum += c.Value
		}
		if diff := sum - n.Value; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("tma: node %s children sum %g != %g", n.Name, sum, n.Value)
		}
	}
	for _, c := range n.Children {
		if err := CheckTree(c); err != nil {
			return err
		}
	}
	return nil
}

// Render prints the tree as an indented percentage breakdown, skipping
// negligible nodes.
func (n *Node) Render(w io.Writer) error {
	return n.render(w, 0, 0.005)
}

func (n *Node) render(w io.Writer, depth int, min float64) error {
	if n.Value < min && depth > 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%s%-24s %5.1f%%\n", strings.Repeat("  ", depth), n.Name, 100*n.Value); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.render(w, depth+1, min); err != nil {
			return err
		}
	}
	return nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
