package tma

// The hierarchical-roofline validation harness: SPIRE's binding-level
// verdict (core.HierarchyEstimate) is cross-checked against the TMA
// tree's level-3 memory split computed from the same counter stream —
// the way the paper validates its rankings against VTune. Both sides see
// the same workload through independent lenses (per-level traffic
// rooflines vs. per-level stall attribution), so agreement is evidence
// the hierarchy verdict reflects the machine, not the model's own
// assumptions.

import (
	"errors"
	"fmt"

	"spire/internal/core"
	"spire/internal/pmu"
)

// hierarchyLevels orders the SPIRE level names and their TMA level-3
// memory-bound node names, fastest first.
var hierarchyLevels = [...]struct{ spire, tree string }{
	{"L1", "l1-bound"},
	{"L2", "l2-bound"},
	{"L3", "l3-bound"},
	{"DRAM", "dram-bound"},
}

// LevelShare is one memory level's absolute share of the slot budget per
// the TMA tree.
type LevelShare struct {
	// Level is the SPIRE hierarchy level name ("L1".."DRAM").
	Level string
	// Share is the level's absolute slot fraction (the tree node value).
	Share float64
}

// MemoryLevels extracts the TMA tree's level-3 memory-bound split as
// SPIRE hierarchy levels, fastest first. Levels the tree did not resolve
// (no memory stalls at all) report share 0. The store-bound child has no
// SPIRE hierarchy counterpart and is omitted.
func MemoryLevels(root *Node) []LevelShare {
	out := make([]LevelShare, len(hierarchyLevels))
	for i, m := range hierarchyLevels {
		out[i] = LevelShare{Level: m.spire}
		if n := root.Find(m.tree); n != nil {
			out[i].Share = n.Value
		}
	}
	return out
}

// Verdict is the outcome of cross-checking one hierarchical estimation
// against the TMA tree.
type Verdict struct {
	// SpireLevel is the binding level SPIRE reported.
	SpireLevel string
	// TMALevel is the dominant memory level per the TMA tree.
	TMALevel string
	// SpireShare and TMAShare are those levels' TMA slot shares,
	// normalized within the memory-bound split.
	SpireShare float64
	TMAShare   float64
	// MemoryBound is the tree's absolute memory-bound fraction.
	MemoryBound float64
	// Vacuous marks workloads TMA considers barely memory-bound at all:
	// the memory split carries no signal, so the check passes trivially.
	Vacuous bool
	// Agree reports whether the two sides name the same level, up to
	// near-ties within the normalized memory split.
	Agree bool
}

// vacuousMemoryBound is the absolute memory-bound fraction below which
// the TMA memory split is considered noise rather than signal.
const vacuousMemoryBound = 0.05

// tieMargin is the normalized-share slack within which two levels count
// as tied: stall attribution and traffic attribution legitimately split
// near-boundary workloads differently.
const tieMargin = 0.10

// CrossCheck validates a SPIRE hierarchical verdict against the TMA tree
// computed from the same run's counter snapshot.
func CrossCheck(h *core.HierarchyEstimate, c pmu.Counts, issueWidth int) (Verdict, error) {
	if h == nil {
		return Verdict{}, errors.New("tma: no hierarchy estimate to cross-check")
	}
	root, err := Tree(c, issueWidth)
	if err != nil {
		return Verdict{}, err
	}
	shares := MemoryLevels(root)
	v := Verdict{SpireLevel: h.BindingLevel}
	if mb := root.Find("memory-bound"); mb != nil {
		v.MemoryBound = mb.Value
	}

	var total, spireAbs, topAbs float64
	for _, s := range shares {
		total += s.Share
		if s.Level == h.BindingLevel {
			spireAbs = s.Share
		}
		if v.TMALevel == "" || s.Share > topAbs {
			v.TMALevel, topAbs = s.Level, s.Share
		}
	}
	if spireAbs == 0 {
		found := false
		for _, m := range hierarchyLevels {
			if m.spire == h.BindingLevel {
				found = true
				break
			}
		}
		if !found {
			return Verdict{}, fmt.Errorf("tma: binding level %q has no TMA counterpart", h.BindingLevel)
		}
	}
	if v.MemoryBound < vacuousMemoryBound || total == 0 {
		v.Vacuous = true
		v.Agree = true
		return v, nil
	}
	v.SpireShare = spireAbs / total
	v.TMAShare = topAbs / total
	v.Agree = v.SpireLevel == v.TMALevel || v.SpireShare >= v.TMAShare-tieMargin
	return v, nil
}
