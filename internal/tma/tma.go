// Package tma implements Top-Down Microarchitecture Analysis (Yasin 2014)
// over the simulated core's performance counters. It is the stand-in for
// the paper's Intel VTune baseline: the level-1 breakdown (retiring /
// front-end bound / bad speculation / back-end bound) plus the level-2
// split of back-end bound into memory bound and core bound, and the
// "main bottleneck" classification used to colour the paper's Table I.
package tma

import (
	"errors"
	"fmt"
	"strings"

	"spire/internal/pmu"
)

// Breakdown is a TMA decomposition; the four level-1 fractions sum to 1
// (after clamping), and MemoryBound + CoreBound = BackEnd.
type Breakdown struct {
	Retiring       float64
	FrontEnd       float64
	BadSpeculation float64
	BackEnd        float64

	// Level-2 split of BackEnd.
	MemoryBound float64
	CoreBound   float64
}

// Analyze computes the breakdown from a counter snapshot (typically
// whole-run deltas). issueWidth is the pipeline width that defines TMA
// slots — 4 for the default core.
func Analyze(c pmu.Counts, issueWidth int) (Breakdown, error) {
	if issueWidth <= 0 {
		return Breakdown{}, errors.New("tma: issue width must be positive")
	}
	cycles := c.Read(pmu.EvCycles)
	if cycles == 0 {
		return Breakdown{}, errors.New("tma: no cycles in snapshot")
	}
	slots := float64(issueWidth) * float64(cycles)

	retiring := float64(c.Read(pmu.EvUopsRetiredSlots)) / slots
	frontend := float64(c.Read(pmu.EvUopsNotDeliveredCore)) / slots
	// Bad speculation: slots wasted on wrong-path issue plus recovery
	// bubbles. The simulator does not issue wrong-path uops, so the
	// recovery term dominates, as it does for flush-heavy workloads on
	// real cores.
	wrongPath := float64(c.Read(pmu.EvUopsIssuedAny)) - float64(c.Read(pmu.EvUopsRetiredSlots))
	if wrongPath < 0 {
		wrongPath = 0
	}
	badSpec := (wrongPath + float64(issueWidth)*float64(c.Read(pmu.EvRecoveryCycles))) / slots

	b := Breakdown{
		Retiring:       clamp01(retiring),
		FrontEnd:       clamp01(frontend),
		BadSpeculation: clamp01(badSpec),
	}
	b.BackEnd = clamp01(1 - b.Retiring - b.FrontEnd - b.BadSpeculation)

	// Level 2: apportion back-end boundedness between memory and core by
	// the share of execution stalls that overlap an outstanding load.
	stalls := float64(c.Read(pmu.EvStallsTotal))
	memStalls := float64(c.Read(pmu.EvStallsMemAny))
	if stalls > 0 {
		frac := memStalls / stalls
		if frac > 1 {
			frac = 1
		}
		b.MemoryBound = b.BackEnd * frac
		b.CoreBound = b.BackEnd - b.MemoryBound
	} else {
		b.CoreBound = b.BackEnd
	}
	return b, nil
}

// MainBottleneck returns the dominant non-retiring level-1 category,
// which is how the paper labels each workload in Table I. For back-end
// bound workloads the level-2 split decides between Memory and Core.
func (b Breakdown) MainBottleneck() pmu.Area {
	switch maxIdx(b.FrontEnd, b.BadSpeculation, b.BackEnd) {
	case 0:
		return pmu.AreaFrontEnd
	case 1:
		return pmu.AreaBadSpeculation
	default:
		if b.MemoryBound >= b.CoreBound {
			return pmu.AreaMemory
		}
		return pmu.AreaCore
	}
}

// String renders the breakdown in VTune-like percentages.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "retiring %.0f%%, front-end %.0f%%, bad-spec %.0f%%, back-end %.0f%%",
		100*b.Retiring, 100*b.FrontEnd, 100*b.BadSpeculation, 100*b.BackEnd)
	if b.BackEnd > 0 {
		fmt.Fprintf(&sb, " (memory %.0f%%, core %.0f%%)", 100*b.MemoryBound, 100*b.CoreBound)
	}
	return sb.String()
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxIdx(xs ...float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
