package tma

import (
	"bytes"
	"strings"
	"testing"

	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

func runWorkload(t *testing.T, name string) pmu.Counts {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(10_000_000)
	if !res.Drained {
		t.Fatalf("%s did not drain", name)
	}
	return res.Counts
}

func TestTreeInvariants(t *testing.T) {
	for _, name := range []string{"fftw", "onnx", "tnn", "scikit-sparsify", "parboil-cutcp", "remhos"} {
		c := runWorkload(t, name)
		tree, err := Tree(c, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CheckTree(tree); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := Tree(pmu.Counts{}, 4); err == nil {
		t.Error("expected error for empty counts")
	}
}

func TestTreeDrillDownShapes(t *testing.T) {
	// DRAM-streaming workload: memory-bound dominated by dram-bound.
	c := runWorkload(t, "onnx")
	tree, err := Tree(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	mem := tree.Find("memory-bound")
	if mem == nil || mem.Value < 0.4 {
		t.Fatalf("onnx memory-bound = %+v", mem)
	}
	dram := tree.Find("dram-bound")
	if dram == nil {
		t.Fatal("missing dram-bound")
	}
	for _, other := range []string{"l1-bound", "l2-bound", "store-bound"} {
		n := tree.Find(other)
		if n != nil && n.Value > dram.Value {
			t.Errorf("onnx: %s (%.3f) should not exceed dram-bound (%.3f)", other, n.Value, dram.Value)
		}
	}

	// Divider workload: core-bound dominated by the divider node.
	c = runWorkload(t, "qmcpack")
	tree, err = Tree(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	div := tree.Find("divider")
	ports := tree.Find("ports-utilization")
	if div == nil || ports == nil {
		t.Fatal("missing core sub-nodes")
	}
	if div.Value < 0.1 {
		t.Errorf("qmcpack divider share %.3f, want substantial", div.Value)
	}

	// Branch workload: bad speculation dominated by mispredicts.
	c = runWorkload(t, "scikit-sparsify")
	tree, err = Tree(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	bm := tree.Find("branch-mispredicts")
	if bm == nil || bm.Value < 0.5 {
		t.Errorf("scikit-sparsify branch-mispredicts = %+v", bm)
	}

	// Front-end workload: fetch-latency and fetch-bandwidth sum to the
	// front-end share; icache-heavy tnn should lean latency.
	c = runWorkload(t, "tnn")
	tree, err = Tree(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	lat := tree.Find("fetch-latency")
	if lat == nil || lat.Value < 0.2 {
		t.Errorf("tnn fetch-latency = %+v", lat)
	}
}

func TestTreeFind(t *testing.T) {
	root := &Node{Name: "a", Children: []*Node{{Name: "b", Children: []*Node{{Name: "c"}}}}}
	if root.Find("c") == nil || root.Find("a") == nil {
		t.Error("Find failed")
	}
	if root.Find("nope") != nil {
		t.Error("Find should return nil for unknown names")
	}
	var nilNode *Node
	if nilNode.Find("x") != nil {
		t.Error("nil receiver should return nil")
	}
}

func TestCheckTreeCatchesViolations(t *testing.T) {
	bad := &Node{Name: "root", Value: 1, Children: []*Node{{Name: "a", Value: 0.2}, {Name: "b", Value: 0.2}}}
	if err := CheckTree(bad); err == nil {
		t.Error("expected children-sum violation")
	}
	oob := &Node{Name: "root", Value: 1.5}
	if err := CheckTree(oob); err == nil {
		t.Error("expected out-of-range violation")
	}
}

func TestTreeRender(t *testing.T) {
	c := runWorkload(t, "onnx")
	tree, err := Tree(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slots", "back-end-bound", "memory-bound", "dram-bound", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
