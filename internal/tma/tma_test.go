package tma

import (
	"math"
	"strings"
	"testing"

	"spire/internal/pmu"
)

// counts builds a Counts snapshot from event/value pairs.
func counts(t *testing.T, kv map[pmu.EventID]uint64) pmu.Counts {
	t.Helper()
	p := pmu.New()
	for ev, v := range kv {
		p.Add(ev, v)
	}
	return p.Snapshot()
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(pmu.Counts{}, 4); err == nil {
		t.Error("expected error for zero cycles")
	}
	c := counts(t, map[pmu.EventID]uint64{pmu.EvCycles: 100})
	if _, err := Analyze(c, 0); err == nil {
		t.Error("expected error for zero issue width")
	}
}

func TestAnalyzeRetiringOnly(t *testing.T) {
	// 100 cycles, 400 slots, all retired: pure retiring.
	c := counts(t, map[pmu.EventID]uint64{
		pmu.EvCycles:           100,
		pmu.EvUopsRetiredSlots: 400,
		pmu.EvUopsIssuedAny:    400,
	})
	b, err := Analyze(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Retiring != 1 || b.FrontEnd != 0 || b.BadSpeculation != 0 || b.BackEnd != 0 {
		t.Errorf("breakdown = %+v, want pure retiring", b)
	}
}

func TestAnalyzeFrontEndBound(t *testing.T) {
	c := counts(t, map[pmu.EventID]uint64{
		pmu.EvCycles:               100,
		pmu.EvUopsRetiredSlots:     100,
		pmu.EvUopsIssuedAny:        100,
		pmu.EvUopsNotDeliveredCore: 300,
	})
	b, err := Analyze(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.FrontEnd-0.75) > 1e-9 {
		t.Errorf("front-end = %g, want 0.75", b.FrontEnd)
	}
	if b.MainBottleneck() != pmu.AreaFrontEnd {
		t.Errorf("main = %v, want Front-End", b.MainBottleneck())
	}
}

func TestAnalyzeBadSpeculation(t *testing.T) {
	c := counts(t, map[pmu.EventID]uint64{
		pmu.EvCycles:           100,
		pmu.EvUopsRetiredSlots: 100,
		pmu.EvUopsIssuedAny:    100,
		pmu.EvRecoveryCycles:   60,
	})
	b, err := Analyze(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.BadSpeculation-0.6) > 1e-9 {
		t.Errorf("bad-spec = %g, want 0.6", b.BadSpeculation)
	}
	if b.MainBottleneck() != pmu.AreaBadSpeculation {
		t.Errorf("main = %v", b.MainBottleneck())
	}
}

func TestAnalyzeBackEndSplit(t *testing.T) {
	mk := func(memStalls uint64) Breakdown {
		c := counts(t, map[pmu.EventID]uint64{
			pmu.EvCycles:           100,
			pmu.EvUopsRetiredSlots: 40,
			pmu.EvUopsIssuedAny:    40,
			pmu.EvStallsTotal:      80,
			pmu.EvStallsMemAny:     memStalls,
		})
		b, err := Analyze(c, 4)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	memHeavy := mk(70)
	coreHeavy := mk(10)
	if memHeavy.MainBottleneck() != pmu.AreaMemory {
		t.Errorf("mem-heavy main = %v", memHeavy.MainBottleneck())
	}
	if coreHeavy.MainBottleneck() != pmu.AreaCore {
		t.Errorf("core-heavy main = %v", coreHeavy.MainBottleneck())
	}
	if math.Abs(memHeavy.MemoryBound+memHeavy.CoreBound-memHeavy.BackEnd) > 1e-9 {
		t.Error("level-2 split must sum to back-end bound")
	}
}

func TestAnalyzeClampsWrongPath(t *testing.T) {
	// Retired > issued (cannot happen physically, but counters can skew):
	// wrong-path term must clamp at zero rather than go negative.
	c := counts(t, map[pmu.EventID]uint64{
		pmu.EvCycles:           100,
		pmu.EvUopsRetiredSlots: 200,
		pmu.EvUopsIssuedAny:    100,
	})
	b, err := Analyze(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.BadSpeculation != 0 {
		t.Errorf("bad-spec = %g, want 0", b.BadSpeculation)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	c := counts(t, map[pmu.EventID]uint64{
		pmu.EvCycles:               1000,
		pmu.EvUopsRetiredSlots:     1200,
		pmu.EvUopsIssuedAny:        1300,
		pmu.EvUopsNotDeliveredCore: 800,
		pmu.EvRecoveryCycles:       100,
		pmu.EvStallsTotal:          400,
		pmu.EvStallsMemAny:         100,
	})
	b, err := Analyze(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := b.Retiring + b.FrontEnd + b.BadSpeculation + b.BackEnd
	if sum > 1.0+1e-9 {
		t.Errorf("level-1 sum = %g, want <= 1", sum)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Retiring: 0.25, FrontEnd: 0.5, BadSpeculation: 0.05, BackEnd: 0.2, MemoryBound: 0.15, CoreBound: 0.05}
	s := b.String()
	for _, want := range []string{"retiring 25%", "front-end 50%", "memory 15%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
