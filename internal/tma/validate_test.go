package tma

import (
	"math/rand"
	"testing"

	"spire/internal/core"
	"spire/internal/pmu"
)

// levelParams drive the synthetic counter generator: per-level load-to-
// use latency (stall cost per load served there) and the deliverable
// bandwidth the validation model assumes.
var levelParams = map[string]struct {
	latency float64
	beta    float64
	event   pmu.EventID
}{
	"L1":   {latency: 4, beta: 32, event: pmu.EvLoadL1Hit},
	"L2":   {latency: 10, beta: 16, event: pmu.EvLoadL2Hit},
	"L3":   {latency: 26, beta: 8, event: pmu.EvLoadL3Hit},
	"DRAM": {latency: 180, beta: 2, event: pmu.EvLoadL3Miss},
}

// hierarchyEnsemble builds the four-level bandwidth-roofline model the
// randomized harness estimates through.
func hierarchyEnsemble(t *testing.T) *core.Ensemble {
	t.Helper()
	ens := &core.Ensemble{
		Rooflines: map[string]*core.Roofline{},
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
		Hierarchy: &core.HierarchyModel{Levels: core.DefaultHierarchyLevels()},
	}
	for _, lv := range ens.Hierarchy.Levels {
		p, ok := levelParams[lv.Level]
		if !ok {
			t.Fatalf("no params for level %q", lv.Level)
		}
		r, err := core.BandwidthRoofline(lv.Metric, 4.0, p.beta, 64)
		if err != nil {
			t.Fatal(err)
		}
		ens.Rooflines[lv.Metric] = r
	}
	return ens
}

// syntheticRun plants a dominant memory level in a counter snapshot and
// the matching sample dataset: the dominant level carries most of the
// load traffic (and so most of the stall cycles), the others a trickle.
// memBound=false plants a compute-bound run instead (negligible memory
// traffic), exercising the vacuous path.
func syntheticRun(rng *rand.Rand, ens *core.Ensemble, dominant string, memBound bool) (core.Dataset, pmu.Counts) {
	insts := 1_000_000 * (0.5 + rng.Float64())
	loads := map[string]float64{}
	for name := range levelParams {
		frac := (1 + rng.Float64()) / 8192 // background traffic
		if !memBound {
			// Compute-bound run: memory traffic an order of magnitude
			// below the background trickle, so TMA sees almost no memory
			// stalls at all.
			frac /= 64
		} else if name == dominant {
			frac = 0.1 + 0.4*rng.Float64() // dominant traffic
		}
		loads[name] = insts * frac
	}

	contention := 0.8 + 0.4*rng.Float64()
	stall := map[string]float64{}
	var memStalls float64
	for name, n := range loads {
		stall[name] = n * levelParams[name].latency * contention
		memStalls += stall[name]
	}

	p := pmu.New()
	cycles := insts/4 + memStalls
	p.Add(pmu.EvCycles, uint64(cycles))
	p.Add(pmu.EvInstRetired, uint64(insts))
	p.Add(pmu.EvUopsRetiredSlots, uint64(insts))
	p.Add(pmu.EvUopsIssuedAny, uint64(insts))
	p.Add(pmu.EvStallsTotal, uint64(memStalls*1.05+cycles*0.01))
	p.Add(pmu.EvStallsMemAny, uint64(memStalls))
	// Cumulative deepest-outstanding-miss stalls, as the hardware counts
	// them: L3-miss ⊂ L2-miss ⊂ L1D-miss ⊂ mem-any.
	p.Add(pmu.EvStallsL3Miss, uint64(stall["DRAM"]))
	p.Add(pmu.EvStallsL2Miss, uint64(stall["DRAM"]+stall["L3"]))
	p.Add(pmu.EvStallsL1DMiss, uint64(stall["DRAM"]+stall["L3"]+stall["L2"]))
	for name, n := range loads {
		p.Add(levelParams[name].event, uint64(n))
	}
	p.Add(pmu.EvLoadL1Miss, uint64(loads["L2"]+loads["L3"]+loads["DRAM"]))
	p.Add(pmu.EvLoadL2Miss, uint64(loads["L3"]+loads["DRAM"]))

	var data core.Dataset
	for _, lv := range ens.Hierarchy.Levels {
		data.Samples = append(data.Samples, core.Sample{
			Metric: lv.Metric, T: cycles, W: insts, M: loads[lv.Level],
		})
	}
	return data, p.Snapshot()
}

// TestCrossCheckRandomizedAgreement is the paper-style validation run:
// across randomized workloads with a planted dominant memory level, the
// SPIRE hierarchical verdict and the TMA tree must agree on at least 95%
// of cases.
func TestCrossCheckRandomizedAgreement(t *testing.T) {
	ens := hierarchyEnsemble(t)
	rng := rand.New(rand.NewSource(97))
	names := []string{"L1", "L2", "L3", "DRAM"}

	const cases = 400
	agree, vacuous := 0, 0
	for i := 0; i < cases; i++ {
		dominant := names[rng.Intn(len(names))]
		memBound := rng.Float64() > 0.1
		data, counts := syntheticRun(rng, ens, dominant, memBound)
		est, err := ens.Estimate(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if est.Hierarchy == nil {
			t.Fatalf("case %d: no hierarchy estimate", i)
		}
		if memBound && est.Hierarchy.BindingLevel != dominant {
			t.Logf("case %d: planted %s, spire says %s", i, dominant, est.Hierarchy.BindingLevel)
		}
		v, err := CrossCheck(est.Hierarchy, counts, 4)
		if err != nil {
			t.Fatalf("case %d: cross-check: %v", i, err)
		}
		if v.Vacuous {
			vacuous++
		}
		if v.Agree {
			agree++
		}
	}
	frac := float64(agree) / float64(cases)
	t.Logf("agreement: %d/%d (%.1f%%), %d vacuous", agree, cases, 100*frac, vacuous)
	if frac < 0.95 {
		t.Fatalf("TMA agreement %.1f%% below the 95%% validation bar", 100*frac)
	}
	if vacuous == 0 {
		t.Fatal("expected some compute-bound (vacuous) cases in the mix")
	}
}

// TestCrossCheckPlantedLevels pins the exact verdict for one clean
// planted case per level: SPIRE and TMA must both name the planted level.
func TestCrossCheckPlantedLevels(t *testing.T) {
	ens := hierarchyEnsemble(t)
	for _, dominant := range []string{"L1", "L2", "L3", "DRAM"} {
		rng := rand.New(rand.NewSource(7))
		data, counts := syntheticRun(rng, ens, dominant, true)
		est, err := ens.Estimate(data)
		if err != nil {
			t.Fatal(err)
		}
		if est.Hierarchy == nil {
			t.Fatal("no hierarchy estimate")
		}
		if got := est.Hierarchy.BindingLevel; got != dominant {
			t.Errorf("planted %s: spire binding level %s", dominant, got)
		}
		v, err := CrossCheck(est.Hierarchy, counts, 4)
		if err != nil {
			t.Fatal(err)
		}
		if v.TMALevel != dominant {
			t.Errorf("planted %s: tma level %s (shares spire %.2f top %.2f)", dominant, v.TMALevel, v.SpireShare, v.TMAShare)
		}
		if !v.Agree || v.Vacuous {
			t.Errorf("planted %s: verdict %+v", dominant, v)
		}
	}
}

func TestMemoryLevels(t *testing.T) {
	root := &Node{Name: "slots", Value: 1, Children: []*Node{
		{Name: "back-end-bound", Value: 0.8, Children: []*Node{
			{Name: "memory-bound", Value: 0.7, Children: []*Node{
				{Name: "l1-bound", Value: 0.1},
				{Name: "l2-bound", Value: 0.05},
				{Name: "l3-bound", Value: 0.15},
				{Name: "dram-bound", Value: 0.35},
				{Name: "store-bound", Value: 0.05},
			}},
			{Name: "core-bound", Value: 0.1},
		}},
	}}
	shares := MemoryLevels(root)
	want := map[string]float64{"L1": 0.1, "L2": 0.05, "L3": 0.15, "DRAM": 0.35}
	if len(shares) != 4 {
		t.Fatalf("got %d levels", len(shares))
	}
	for _, s := range shares {
		if s.Share != want[s.Level] {
			t.Errorf("%s share %g, want %g", s.Level, s.Share, want[s.Level])
		}
	}
	// A tree without the memory split resolves to all-zero shares.
	for _, s := range MemoryLevels(&Node{Name: "slots", Value: 1}) {
		if s.Share != 0 {
			t.Errorf("bare tree: %s share %g", s.Level, s.Share)
		}
	}
}

func TestCrossCheckErrors(t *testing.T) {
	p := pmu.New()
	p.Add(pmu.EvCycles, 1000)
	if _, err := CrossCheck(nil, p.Snapshot(), 4); err == nil {
		t.Error("nil hierarchy estimate: want error")
	}
	h := &core.HierarchyEstimate{BindingLevel: "HBM"}
	if _, err := CrossCheck(h, p.Snapshot(), 4); err == nil {
		t.Error("unknown binding level: want error")
	}
	h.BindingLevel = "L2"
	if _, err := CrossCheck(h, pmu.Counts{}, 4); err == nil {
		t.Error("empty counters: want error")
	}
	v, err := CrossCheck(h, p.Snapshot(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Vacuous || !v.Agree {
		t.Errorf("no memory stalls should be vacuous agreement, got %+v", v)
	}
}
