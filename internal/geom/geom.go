// Package geom provides the small computational-geometry kernel used by
// SPIRE's roofline fitting: 2-D points, piecewise-linear functions, upper
// convex hulls, and Pareto fronts.
//
// Throughout this package the x axis is a SPIRE operational intensity
// (work per metric event) and the y axis is a throughput (work per time).
// Both are non-negative; x may be +Inf (a sample whose metric count was
// zero has infinite operational intensity).
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a 2-D point. In SPIRE terms X is operational intensity and Y is
// throughput.
type Point struct {
	X float64
	Y float64
}

// String renders the point compactly for diagnostics.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// IsFinite reports whether both coordinates are finite (not NaN or ±Inf).
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Valid reports whether the point can participate in roofline fitting:
// finite non-negative throughput and non-negative (possibly +Inf)
// intensity.
func (p Point) Valid() bool {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		return false
	}
	if p.X < 0 || p.Y < 0 {
		return false
	}
	if math.IsInf(p.Y, 0) {
		return false
	}
	return !math.IsInf(p.X, -1)
}

// SortByX sorts points by ascending X, breaking ties by descending Y so
// that the dominant point of a vertical cluster comes first.
func SortByX(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y > pts[j].Y
	})
}

// MaxY returns the index of the point with the highest Y value. Ties are
// broken by the lower X (the earliest such point after SortByX ordering).
// It returns -1 for an empty slice.
func MaxY(pts []Point) int {
	best := -1
	for i, p := range pts {
		if best == -1 || p.Y > pts[best].Y ||
			(p.Y == pts[best].Y && p.X < pts[best].X) {
			best = i
		}
	}
	return best
}

// Slope returns the slope of the line from a to b. A vertical rise returns
// ±Inf; coincident points return NaN.
func Slope(a, b Point) float64 {
	return (b.Y - a.Y) / (b.X - a.X)
}

// UpperHullFromOrigin computes the chain of points used by SPIRE's
// left-region fit (paper Fig. 5): starting from the origin, repeatedly move
// to the remaining point with the greatest slope from the current point,
// until the maximum-throughput point is reached. The result is an
// increasing, concave-down chain that lies on or above every input point
// over the chain's X range. The returned chain excludes the origin and is
// ordered by ascending X; it always ends at the maximum-Y point.
//
// Only points with X at or below the maximum-Y point's X participate
// (points to its right belong to the right-region fit). Points must be
// Valid; callers filter beforehand. An empty input yields a nil chain.
func UpperHullFromOrigin(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	peak := pts[MaxY(pts)]
	// Candidates: strictly left of (or at) the peak.
	cand := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.X <= peak.X {
			cand = append(cand, p)
		}
	}
	var chain []Point
	cur := Point{0, 0}
	for {
		if cur == peak {
			break
		}
		// Find the highest slope from cur among candidates strictly
		// up-and-right of cur.
		bestIdx := -1
		bestSlope := math.Inf(-1)
		for i, p := range cand {
			if p.X <= cur.X || p.Y < cur.Y {
				continue
			}
			if p.X == cur.X && p.Y == cur.Y {
				continue
			}
			s := Slope(cur, p)
			if s > bestSlope || (s == bestSlope && bestIdx >= 0 && p.X > cand[bestIdx].X) {
				bestSlope = s
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			// No point is up-and-right; the peak must be reachable,
			// so this only happens when cur already dominates peak
			// (duplicate peaks). Terminate defensively.
			break
		}
		cur = cand[bestIdx]
		chain = append(chain, cur)
	}
	if len(chain) == 0 || chain[len(chain)-1] != peak {
		chain = append(chain, peak)
	}
	return chain
}

// ParetoFront returns the subset of points that are Pareto-optimal when
// maximizing both X and Y: a point is kept iff no other point has both
// X >= and Y >= (with at least one strict). The result is sorted by
// ascending X, which — by Pareto optimality — is also descending in Y.
// Duplicate points are collapsed to one.
func ParetoFront(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	// Descending X; ties by descending Y.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X > sorted[j].X
		}
		return sorted[i].Y > sorted[j].Y
	})
	var front []Point
	bestY := math.Inf(-1)
	lastX := math.NaN()
	for _, p := range sorted {
		if p.Y > bestY {
			if p.X == lastX && len(front) > 0 {
				// Same X as the previous front member but higher Y
				// cannot happen given the sort; guard anyway.
				continue
			}
			front = append(front, p)
			bestY = p.Y
			lastX = p.X
		}
	}
	// front is in descending X; reverse to ascending.
	for i, j := 0, len(front)-1; i < j; i, j = i+1, j-1 {
		front[i], front[j] = front[j], front[i]
	}
	return front
}
