package geom

import (
	"math"
	"testing"
)

func mustPWL(t *testing.T, pts []Point, extendLeft bool) *PiecewiseLinear {
	t.Helper()
	f, err := NewPiecewiseLinear(pts, extendLeft)
	if err != nil {
		t.Fatalf("NewPiecewiseLinear: %v", err)
	}
	return f
}

func TestPiecewiseLinearErrors(t *testing.T) {
	if _, err := NewPiecewiseLinear(nil, false); err == nil {
		t.Error("expected error for empty breakpoints")
	}
	if _, err := NewPiecewiseLinear([]Point{{2, 1}, {1, 2}}, false); err == nil {
		t.Error("expected error for unsorted breakpoints")
	}
	if _, err := NewPiecewiseLinear([]Point{{1, 1}, {1, 2}}, false); err == nil {
		t.Error("expected error for duplicate X")
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	f := mustPWL(t, []Point{{0, 0}, {2, 4}, {4, 5}}, false)
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 2}, {2, 4}, {3, 4.5}, {4, 5},
		{10, 5},          // horizontal tail
		{math.Inf(1), 5}, // +Inf uses the tail
		{-1, 0},          // clamped left
	}
	for _, c := range cases {
		if got := f.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got := f.Eval(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Eval(NaN) = %g, want NaN", got)
	}
}

func TestPiecewiseLinearExtendLeft(t *testing.T) {
	f := mustPWL(t, []Point{{1, 2}, {2, 4}}, true)
	if got := f.Eval(0); math.Abs(got-0) > 1e-12 {
		t.Errorf("extended Eval(0) = %g, want 0", got)
	}
	g := mustPWL(t, []Point{{1, 2}, {2, 4}}, false)
	if got := g.Eval(0); got != 2 {
		t.Errorf("clamped Eval(0) = %g, want 2", got)
	}
}

func TestPiecewiseLinearSingleBreakpoint(t *testing.T) {
	f := mustPWL(t, []Point{{3, 7}}, true)
	for _, x := range []float64{0, 3, 100, math.Inf(1)} {
		if got := f.Eval(x); got != 7 {
			t.Errorf("Eval(%g) = %g, want 7", x, got)
		}
	}
}

func TestPiecewiseLinearShapePredicates(t *testing.T) {
	inc := mustPWL(t, []Point{{0, 0}, {1, 2}, {2, 3}}, false)
	if !inc.IsNonDecreasing() || inc.IsNonIncreasing() {
		t.Error("increasing function misclassified")
	}
	if !inc.IsConcaveDown() {
		t.Error("slopes 2 then 1 should be concave-down")
	}
	dec := mustPWL(t, []Point{{0, 5}, {1, 2}, {2, 1}}, false)
	if !dec.IsNonIncreasing() || dec.IsNonDecreasing() {
		t.Error("decreasing function misclassified")
	}
	if !dec.IsConcaveUp() {
		t.Error("slopes -3 then -1 should be concave-up")
	}
}

func TestPiecewiseLinearBreakpointsCopy(t *testing.T) {
	src := []Point{{0, 0}, {1, 1}}
	f := mustPWL(t, src, false)
	bp := f.Breakpoints()
	bp[0].Y = 99
	src[1].Y = 99
	if f.Eval(0) != 0 || f.Eval(1) != 1 {
		t.Error("function state was mutated through a shared slice")
	}
}

func TestPiecewiseLinearInfBreakpoint(t *testing.T) {
	f := mustPWL(t, []Point{{0, 4}, {math.Inf(1), 1}}, false)
	// Interpolation toward an infinite X is horizontal at the previous Y.
	if got := f.Eval(100); got != 4 {
		t.Errorf("Eval(100) = %g, want 4", got)
	}
	if got := f.Eval(math.Inf(1)); got != 1 {
		t.Errorf("Eval(+Inf) = %g, want 1 (last breakpoint)", got)
	}
}
