package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 2}, true},
		{Point{0, 0}, true},
		{Point{math.Inf(1), 3}, true},
		{Point{math.Inf(-1), 3}, false},
		{Point{-1, 3}, false},
		{Point{1, -0.5}, false},
		{Point{1, math.Inf(1)}, false},
		{Point{math.NaN(), 1}, false},
		{Point{1, math.NaN()}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSortByX(t *testing.T) {
	pts := []Point{{3, 1}, {1, 2}, {1, 5}, {2, 0}}
	SortByX(pts)
	want := []Point{{1, 5}, {1, 2}, {2, 0}, {3, 1}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("SortByX[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestMaxY(t *testing.T) {
	if got := MaxY(nil); got != -1 {
		t.Errorf("MaxY(nil) = %d, want -1", got)
	}
	pts := []Point{{1, 3}, {5, 7}, {2, 7}, {9, 1}}
	if got := MaxY(pts); got != 2 {
		t.Errorf("MaxY = %d (point %v), want 2 (lower X tie-break)", got, pts[got])
	}
}

func TestSlope(t *testing.T) {
	if got := Slope(Point{0, 0}, Point{2, 4}); got != 2 {
		t.Errorf("Slope = %g, want 2", got)
	}
	if got := Slope(Point{1, 0}, Point{1, 4}); !math.IsInf(got, 1) {
		t.Errorf("vertical Slope = %g, want +Inf", got)
	}
}

func TestUpperHullFromOriginSimple(t *testing.T) {
	// Points along y = sqrt(x)-ish: hull should pick the steep early
	// point then the peak.
	pts := []Point{{1, 1}, {2, 1.2}, {4, 2}, {3, 1.4}}
	chain := UpperHullFromOrigin(pts)
	if len(chain) == 0 {
		t.Fatal("empty chain")
	}
	if chain[len(chain)-1] != (Point{4, 2}) {
		t.Errorf("chain does not end at peak: %v", chain)
	}
	assertHullProperties(t, pts, chain)
}

func TestUpperHullFromOriginSinglePoint(t *testing.T) {
	chain := UpperHullFromOrigin([]Point{{2, 3}})
	if len(chain) != 1 || chain[0] != (Point{2, 3}) {
		t.Fatalf("chain = %v, want [(2,3)]", chain)
	}
}

func TestUpperHullFromOriginEmpty(t *testing.T) {
	if chain := UpperHullFromOrigin(nil); chain != nil {
		t.Fatalf("chain = %v, want nil", chain)
	}
}

func TestUpperHullCollinear(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {3, 3}}
	chain := UpperHullFromOrigin(pts)
	// All collinear through origin: highest slope ties broken by larger
	// X, so the hull should jump straight to the peak.
	if chain[len(chain)-1] != (Point{3, 3}) {
		t.Fatalf("chain = %v, want end at (3,3)", chain)
	}
	assertHullProperties(t, pts, chain)
}

// assertHullProperties checks the paper's left-fit requirements: the chain
// is increasing, concave-down from the origin, and lies on or above every
// input point at or left of the peak.
func assertHullProperties(t *testing.T, pts, chain []Point) {
	t.Helper()
	prev := Point{0, 0}
	prevSlope := math.Inf(1)
	for i, p := range chain {
		if p.X < prev.X || p.Y < prev.Y {
			t.Fatalf("chain not increasing at %d: %v after %v", i, p, prev)
		}
		if p.X > prev.X {
			s := Slope(prev, p)
			if s > prevSlope+1e-9 {
				t.Fatalf("chain not concave-down at %d: slope %g after %g", i, s, prevSlope)
			}
			prevSlope = s
		}
		prev = p
	}
	peak := chain[len(chain)-1]
	evalChain := func(x float64) float64 {
		prev := Point{0, 0}
		for _, p := range chain {
			if x <= p.X {
				if p.X == prev.X {
					return p.Y
				}
				tt := (x - prev.X) / (p.X - prev.X)
				return prev.Y + tt*(p.Y-prev.Y)
			}
			prev = p
		}
		return prev.Y
	}
	for _, p := range pts {
		if p.X > peak.X {
			continue
		}
		if got := evalChain(p.X); got < p.Y-1e-9*(1+p.Y) {
			t.Fatalf("hull undercut point %v: eval=%g", p, got)
		}
	}
}

func TestUpperHullPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 10}
		}
		chain := UpperHullFromOrigin(pts)
		assertHullProperties(t, pts, chain)
	}
}

func TestParetoFrontBasic(t *testing.T) {
	pts := []Point{{1, 5}, {2, 3}, {3, 4}, {4, 1}, {2.5, 0.5}}
	front := ParetoFront(pts)
	want := []Point{{1, 5}, {3, 4}, {4, 1}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front[%d] = %v, want %v", i, front[i], want[i])
		}
	}
}

func TestParetoFrontDuplicates(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	front := ParetoFront(pts)
	if len(front) != 1 {
		t.Fatalf("front = %v, want single point", front)
	}
}

func TestParetoFrontWithInf(t *testing.T) {
	pts := []Point{{1, 5}, {math.Inf(1), 2}, {3, 3}}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front = %v, want 3 members", front)
	}
	if !math.IsInf(front[2].X, 1) {
		t.Fatalf("rightmost front member should be at +Inf: %v", front)
	}
}

// TestParetoFrontProperty uses testing/quick: every input point must be
// dominated by (or equal to) some front member, front is ascending in X
// and descending in Y.
func TestParetoFrontProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{X: float64(raw[i] % 100), Y: float64(raw[i+1] % 100)})
		}
		front := ParetoFront(pts)
		for i := 1; i < len(front); i++ {
			if front[i].X <= front[i-1].X || front[i].Y >= front[i-1].Y {
				return false
			}
		}
		for _, p := range pts {
			dominated := false
			for _, f := range front {
				if f.X >= p.X && f.Y >= p.Y {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
