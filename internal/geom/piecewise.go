package geom

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrEmptyFunction is returned when constructing a PiecewiseLinear with no
// breakpoints.
var ErrEmptyFunction = errors.New("geom: piecewise-linear function needs at least one breakpoint")

// PiecewiseLinear is a function defined by straight segments between
// breakpoints sorted by ascending X. Outside the breakpoint range the
// function is extended with configurable behaviour: to the left it follows
// the first segment (or is clamped), and to the right it is held constant
// at the last breakpoint's Y (the "horizontal tail" used by SPIRE's right
// region fit).
type PiecewiseLinear struct {
	pts []Point
	// extendLeft, when true, extrapolates the first segment for x below
	// the first breakpoint; otherwise the function is clamped to the
	// first breakpoint's Y.
	extendLeft bool
}

// NewPiecewiseLinear builds a function from breakpoints. Points are copied
// and must already be sorted by ascending X with no duplicate X values.
func NewPiecewiseLinear(pts []Point, extendLeft bool) (*PiecewiseLinear, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyFunction
	}
	for i := 1; i < len(pts); i++ {
		if !(pts[i].X > pts[i-1].X) {
			return nil, fmt.Errorf("geom: breakpoints not strictly ascending at index %d (%v after %v)", i, pts[i], pts[i-1])
		}
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &PiecewiseLinear{pts: cp, extendLeft: extendLeft}, nil
}

// Breakpoints returns a copy of the function's breakpoints.
func (f *PiecewiseLinear) Breakpoints() []Point {
	cp := make([]Point, len(f.pts))
	copy(cp, f.pts)
	return cp
}

// Eval returns the function value at x. For x beyond the last breakpoint
// the last Y is returned (horizontal tail); this also covers x = +Inf.
func (f *PiecewiseLinear) Eval(x float64) float64 {
	n := len(f.pts)
	if math.IsNaN(x) {
		return math.NaN()
	}
	if x >= f.pts[n-1].X || math.IsInf(x, 1) {
		return f.pts[n-1].Y
	}
	if x <= f.pts[0].X {
		if !f.extendLeft || n == 1 {
			return f.pts[0].Y
		}
		return interp(f.pts[0], f.pts[1], x)
	}
	// Binary search for the segment containing x.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if f.pts[mid].X <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return interp(f.pts[lo], f.pts[hi], x)
}

// interp linearly interpolates between a and b at x. Infinite b.X yields
// a horizontal extension at a.Y.
func interp(a, b Point, x float64) float64 {
	if math.IsInf(b.X, 1) {
		return a.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// String renders the breakpoints, handy in test failures.
func (f *PiecewiseLinear) String() string {
	var b strings.Builder
	b.WriteString("PWL[")
	for i, p := range f.pts {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("]")
	return b.String()
}

// IsNonDecreasing reports whether successive breakpoints never lose Y.
func (f *PiecewiseLinear) IsNonDecreasing() bool {
	for i := 1; i < len(f.pts); i++ {
		if f.pts[i].Y < f.pts[i-1].Y {
			return false
		}
	}
	return true
}

// IsNonIncreasing reports whether successive breakpoints never gain Y.
func (f *PiecewiseLinear) IsNonIncreasing() bool {
	for i := 1; i < len(f.pts); i++ {
		if f.pts[i].Y > f.pts[i-1].Y {
			return false
		}
	}
	return true
}

// IsConcaveDown reports whether segment slopes are non-increasing from
// left to right.
func (f *PiecewiseLinear) IsConcaveDown() bool {
	prev := math.Inf(1)
	for i := 1; i < len(f.pts); i++ {
		s := Slope(f.pts[i-1], f.pts[i])
		if s > prev+1e-12 {
			return false
		}
		prev = s
	}
	return true
}

// IsConcaveUp reports whether segment slopes are non-decreasing from left
// to right.
func (f *PiecewiseLinear) IsConcaveUp() bool {
	prev := math.Inf(-1)
	for i := 1; i < len(f.pts); i++ {
		s := Slope(f.pts[i-1], f.pts[i])
		if s < prev-1e-12 {
			return false
		}
		prev = s
	}
	return true
}
