package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosDeterministicPlans pins reproducibility: the same seed draws
// the same fault sequence; a different seed draws a different one.
func TestChaosDeterministicPlans(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, StallRate: 0.2, ResetRate: 0.2, SlowriteRate: 0.2, TruncateRate: 0.2}
	seq := func(seed int64) string {
		c := cfg
		c.Seed = seed
		ch := NewChaos(c)
		var b strings.Builder
		for i := 0; i < 200; i++ {
			fmt.Fprintf(&b, "%s,", ch.plan())
		}
		return b.String()
	}
	if seq(7) != seq(7) {
		t.Fatal("same seed must draw the same fault plan sequence")
	}
	if seq(7) == seq(8) {
		t.Fatal("different seeds should draw different fault plans")
	}
}

func TestChaosZeroConfigInjectsNothing(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1})
	for i := 0; i < 1000; i++ {
		if k := c.plan(); k != faultNone {
			t.Fatalf("zero-rate chaos injected %q", k)
		}
	}
	if c.Total() != 0 {
		t.Fatalf("Total = %d, want 0", c.Total())
	}
}

// TestChaosTransportReset: a reset-fault request fails with a
// connection-reset error and never reaches the server.
func TestChaosTransportReset(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	chaos := NewChaos(ChaosConfig{Seed: 1, ResetRate: 1})
	client := &http.Client{Transport: chaos.Transport(nil)}
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("reset fault should fail the request")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET", err)
	}
	if hits != 0 {
		t.Fatalf("server saw %d hits through a 100%% reset transport", hits)
	}
	if c := chaos.Counts()[FaultReset]; c != 1 {
		t.Fatalf("reset count = %d, want 1", c)
	}
}

// TestChaosTransportTruncate: a truncate-fault response dies mid-body
// with ErrUnexpectedEOF after the configured byte budget.
func TestChaosTransportTruncate(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	chaos := NewChaos(ChaosConfig{Seed: 1, TruncateRate: 1, TruncateAfter: 100})
	client := &http.Client{Transport: chaos.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) > 100 {
		t.Fatalf("read %d bytes through a 100-byte truncation", len(body))
	}
}

// TestChaosTransportShortBodySurvivesTruncation: a body smaller than the
// truncation budget is delivered intact (EOF inside the budget is not a
// fault).
func TestChaosTransportShortBodySurvivesTruncation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "tiny")
	}))
	defer ts.Close()
	chaos := NewChaos(ChaosConfig{Seed: 1, TruncateRate: 1, TruncateAfter: 100})
	client := &http.Client{Transport: chaos.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "tiny" {
		t.Fatalf("short body = %q, %v; want \"tiny\", nil", body, err)
	}
}

// TestChaosTransportStall: a stall-fault request succeeds after the
// injected delay, and respects context cancellation during the stall.
func TestChaosTransportStall(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	chaos := NewChaos(ChaosConfig{Seed: 1, StallRate: 1, Stall: 20 * time.Millisecond})
	client := &http.Client{Transport: chaos.Transport(nil)}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("stalled request finished in %s, want >= 20ms", elapsed)
	}
}

// TestChaosListenerReset: a reset-plan connection dies hard; the client
// observes a transport error, not a clean response.
func TestChaosListenerReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(ChaosConfig{Seed: 1, ResetRate: 1})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("y", 8192)))
	})}
	go srv.Serve(chaos.Listener(ln))
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ln.Addr().String())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("connection through a 100%-reset listener should fail somewhere")
	}
}

// TestChaosListenerSlowrite: responses still arrive intact through a
// slow-loris write plan, just late.
func TestChaosListenerSlowrite(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(ChaosConfig{Seed: 1, SlowriteRate: 1, ChunkSize: 16, ChunkDelay: 100 * time.Microsecond})
	const payload = "slow and steady wins the race"
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	})}
	go srv.Serve(chaos.Listener(ln))
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != payload {
		t.Fatalf("slow-loris body = %q, %v; want intact payload", body, err)
	}
	if c := chaos.Counts()[FaultSlowrite]; c == 0 {
		t.Fatal("slowrite fault never recorded")
	}
}
