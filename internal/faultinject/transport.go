package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// This file extends the dataset corruptor to the transport: a
// deterministic chaos net.Listener / http.RoundTripper pair that breaks
// connections the way real networks do — stalled reads, slow-loris
// writes, mid-body connection resets, truncated response bodies and SSE
// frames. Like the dataset faults, every decision comes from one seeded
// PRNG, so a given (seed, fault-rate) configuration draws the same fault
// plan sequence run after run; what interleaving the goroutine scheduler
// lays those plans over is the only nondeterminism left, which is
// exactly the point of a chaos soak under -race.

// Fault kinds counted by Chaos.Counts.
const (
	FaultStall    = "stall"     // a read pauses for Stall
	FaultReset    = "reset"     // the connection dies mid-exchange
	FaultSlowrite = "slowrite"  // writes trickle out in tiny delayed chunks
	FaultTruncate = "truncate"  // the body/frame is cut short
	faultNone     = "none"      // plan drew no fault (not reported)
)

// ChaosConfig tunes the transport corruptor. Rates are per-exchange
// Bernoulli probabilities in [0,1]; a zero config injects nothing.
type ChaosConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// StallRate delays a read by Stall before it proceeds.
	StallRate float64
	// Stall is the injected read delay. Default 2ms.
	Stall time.Duration
	// ResetRate kills the exchange with a connection-reset error.
	ResetRate float64
	// SlowriteRate makes writes trickle in ChunkSize pieces separated
	// by ChunkDelay — the slow-loris shape.
	SlowriteRate float64
	// ChunkSize is the slow-loris write granularity. Default 64 bytes.
	ChunkSize int
	// ChunkDelay separates slow-loris chunks. Default 200µs.
	ChunkDelay time.Duration
	// TruncateRate cuts a body short after TruncateAfter bytes.
	TruncateRate float64
	// TruncateAfter is how many bytes survive a truncation. Default 64.
	TruncateAfter int
}

func (c *ChaosConfig) setDefaults() {
	if c.Stall == 0 {
		c.Stall = 2 * time.Millisecond
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
	}
	if c.ChunkDelay == 0 {
		c.ChunkDelay = 200 * time.Microsecond
	}
	if c.TruncateAfter <= 0 {
		c.TruncateAfter = 64
	}
}

// Chaos hands out chaotic transports and listeners driven by one seeded
// PRNG. Safe for concurrent use.
type Chaos struct {
	cfg ChaosConfig

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int
}

// NewChaos builds a Chaos from cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	cfg.setDefaults()
	return &Chaos{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[string]int),
	}
}

// Counts reports how many faults of each kind have been injected.
func (c *Chaos) Counts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Total reports the total number of injected faults.
func (c *Chaos) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// plan draws one exchange's fault, at most one kind per exchange so
// error accounting stays attributable.
func (c *Chaos) plan() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rng.Float64()
	kind := faultNone
	switch {
	case r < c.cfg.StallRate:
		kind = FaultStall
	case r < c.cfg.StallRate+c.cfg.ResetRate:
		kind = FaultReset
	case r < c.cfg.StallRate+c.cfg.ResetRate+c.cfg.SlowriteRate:
		kind = FaultSlowrite
	case r < c.cfg.StallRate+c.cfg.ResetRate+c.cfg.SlowriteRate+c.cfg.TruncateRate:
		kind = FaultTruncate
	}
	if kind != faultNone {
		c.counts[kind]++
	}
	return kind
}

// errReset is the synthetic mid-exchange connection death.
var errReset = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}

// Transport wraps base (nil selects http.DefaultTransport) with
// client-side chaos. Each request draws one fault: a stall before the
// exchange, a connection reset instead of a response, or a response body
// that is truncated mid-stream (for SSE responses this is a truncated
// frame). Request errors are reported as connection resets, which
// retry-classifying clients must treat as maybe-delivered.
func (c *Chaos) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosTransport{chaos: c, base: base}
}

type chaosTransport struct {
	chaos *Chaos
	base  http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.chaos.plan() {
	case FaultStall:
		select {
		case <-time.After(t.chaos.cfg.Stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case FaultReset:
		// Die before the exchange: the caller cannot know whether the
		// request reached the server.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errReset
	case FaultSlowrite:
		// Client-side slow-loris: trickle the request body.
		if req.Body != nil {
			req.Body = &slowReader{rc: req.Body, chunk: t.chaos.cfg.ChunkSize, delay: t.chaos.cfg.ChunkDelay}
		}
	case FaultTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: t.chaos.cfg.TruncateAfter}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// slowReader trickles reads chunk bytes at a time with a delay, turning
// the wrapped body into a slow-loris upload.
type slowReader struct {
	rc    io.ReadCloser
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	time.Sleep(s.delay)
	return s.rc.Read(p)
}

func (s *slowReader) Close() error { return s.rc.Close() }

// truncatedBody yields at most remaining bytes, then fails the stream
// the way a torn connection does.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The body really ended inside the budget: no fault after all.
		return n, io.EOF
	}
	if b.remaining <= 0 {
		b.rc.Close()
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Listener wraps base with server-side chaos: accepted connections draw
// per-connection fault plans — stalled first reads, slow-loris response
// writes, and hard resets after a byte budget (mid-body from the peer's
// point of view).
func (c *Chaos) Listener(base net.Listener) net.Listener {
	return &chaosListener{chaos: c, Listener: base}
}

type chaosListener struct {
	net.Listener
	chaos *Chaos
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cc := &chaosConn{Conn: conn, chaos: l.chaos, kind: l.chaos.plan()}
	if cc.kind == FaultReset || cc.kind == FaultTruncate {
		// Budget before the connection dies; truncate behaves like a
		// reset that waited for part of the response.
		cc.resetAfter = l.chaos.cfg.TruncateAfter
		if cc.kind == FaultReset {
			cc.resetAfter = 0
		}
	}
	return cc, nil
}

// chaosConn applies one connection's fault plan.
type chaosConn struct {
	net.Conn
	chaos *Chaos
	kind  string

	mu         sync.Mutex
	stalled    bool
	written    int
	resetAfter int
	dead       bool
}

// kill hard-closes the connection (RST when the stack allows it, so the
// peer sees ECONNRESET rather than a clean FIN).
func (c *chaosConn) kill() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

func (c *chaosConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, errReset
	}
	stallNow := c.kind == FaultStall && !c.stalled
	c.stalled = true
	c.mu.Unlock()
	if stallNow {
		time.Sleep(c.chaos.cfg.Stall)
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, errReset
	}
	kind := c.kind
	budget := c.resetAfter - c.written
	c.mu.Unlock()

	switch kind {
	case FaultReset, FaultTruncate:
		if budget <= 0 {
			c.mu.Lock()
			c.dead = true
			c.mu.Unlock()
			c.kill()
			return 0, errReset
		}
		n := len(p)
		if n > budget {
			n = budget
		}
		n, err := c.Conn.Write(p[:n])
		c.mu.Lock()
		c.written += n
		c.mu.Unlock()
		if err != nil {
			return n, err
		}
		if n < len(p) {
			c.mu.Lock()
			c.dead = true
			c.mu.Unlock()
			c.kill()
			return n, errReset
		}
		return n, nil
	case FaultSlowrite:
		total := 0
		for len(p) > 0 {
			chunk := len(p)
			if chunk > c.chaos.cfg.ChunkSize {
				chunk = c.chaos.cfg.ChunkSize
			}
			time.Sleep(c.chaos.cfg.ChunkDelay)
			n, err := c.Conn.Write(p[:chunk])
			total += n
			if err != nil {
				return total, err
			}
			p = p[chunk:]
		}
		return total, nil
	}
	return c.Conn.Write(p)
}

// String describes the chaos configuration (test logs).
func (c *Chaos) String() string {
	return fmt.Sprintf("chaos(seed=%d stall=%.2f reset=%.2f slowrite=%.2f truncate=%.2f)",
		c.cfg.Seed, c.cfg.StallRate, c.cfg.ResetRate, c.cfg.SlowriteRate, c.cfg.TruncateRate)
}
