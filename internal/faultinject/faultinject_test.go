package faultinject

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/ingest"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// The end-to-end fixture: clean simulator collections, a model trained on
// them, and the clean-baseline estimation the fault runs are compared
// against. Collected once — simulation dominates the test runtime.
var (
	setupOnce sync.Once
	setupErr  error
	trainData core.Dataset
	target    core.Dataset
	model     *core.Ensemble
	baseline  *core.Estimation
)

// estimate runs on the shared engine — the same Eq. 1 path every
// production frontend uses, so fault tolerance is asserted against the
// real estimation stack.
func estimate(ens *core.Ensemble, d core.Dataset) (*core.Estimation, error) {
	return engine.Default().Estimate(context.Background(), ens, d, core.EstimateOptions{})
}

func collect(name string) (core.Dataset, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return core.Dataset{}, err
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.3), 3)
	if err != nil {
		return core.Dataset{}, err
	}
	data, _, err := perfstat.Collect(s, name, perfstat.Options{
		IntervalCycles: 10_000,
		MaxCycles:      600_000,
		Multiplex:      true,
	})
	return data, err
}

func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		for _, w := range []string{"fftw", "remhos"} {
			d, err := collect(w)
			if err != nil {
				setupErr = err
				return
			}
			trainData.Merge(d)
		}
		var err error
		if target, err = collect("onnx"); err != nil {
			setupErr = err
			return
		}
		// The baseline goes through the same validate-then-train pipeline
		// the fault runs use, so comparisons isolate the injected faults.
		opts := core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"}
		if model, _, err = core.TrainValidated(trainData, opts, core.ValidateOptions{}); err != nil {
			setupErr = err
			return
		}
		baseline, err = estimate(model, core.Validate(target, core.ValidateOptions{}).Clean)
		setupErr = err
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
}

// topSet returns the k lowest-estimate metric names as a set.
func topSet(est *core.Estimation, k int) map[string]bool {
	out := make(map[string]bool)
	for _, m := range est.TopMetrics(k) {
		out[m.Metric] = true
	}
	return out
}

func overlap(a, b map[string]bool) int {
	n := 0
	for m := range a {
		if b[m] {
			n++
		}
	}
	return n
}

// TestBoundedDegradation corrupts the target collection one fault class
// at a time, runs it through validation, and asserts the estimate stays
// close to the clean baseline: the top-3 bottleneck ranking keeps at
// least minOverlap of the clean top-3, and the ensemble throughput bound
// deviates by at most maxDev relative.
func TestBoundedDegradation(t *testing.T) {
	setup(t)
	cases := []struct {
		name       string
		corrupt    func(*Injector, core.Dataset) core.Dataset
		minOverlap int
		maxDev     float64
	}{
		{"drop-intervals", func(in *Injector, d core.Dataset) core.Dataset {
			return in.DropIntervals(d, 0.15)
		}, 3, 0.05},
		{"duplicate-intervals", func(in *Injector, d core.Dataset) core.Dataset {
			return in.DuplicateIntervals(d, 0.15)
		}, 3, 0.05},
		{"counter-wrap", func(in *Injector, d core.Dataset) core.Dataset {
			return in.CounterWrap(d, 0.10)
		}, 3, 0.05},
		{"nan-inject", func(in *Injector, d core.Dataset) core.Dataset {
			return in.NaNInject(d, 0.10)
		}, 3, 0.05},
		{"negative-time", func(in *Injector, d core.Dataset) core.Dataset {
			return in.NegativeTime(d, 0.10)
		}, 3, 0.05},
		{"clock-skew", func(in *Injector, d core.Dataset) core.Dataset {
			return in.ClockSkew(d, 1.0, 0.02)
		}, 3, 0.10},
		// Scaling spikes shift the affected samples' intensity instead of
		// producing a structurally invalid value, so some leak past
		// validation and perturb per-metric means: the ranking may swap
		// neighbors, hence the looser overlap bound. The throughput bound
		// itself stays put because spiked samples move right along the
		// roofline, where estimates plateau.
		{"scaling-spike", func(in *Injector, d core.Dataset) core.Dataset {
			return in.ScalingSpike(d, 0.10)
		}, 2, 0.15},
	}
	cleanTop := topSet(baseline, 3)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupted := tc.corrupt(New(42), target)
			rep := core.Validate(corrupted, core.ValidateOptions{})
			est, err := estimate(model, rep.Clean)
			if err != nil {
				t.Fatalf("estimate on corrupted data: %v", err)
			}
			if got := overlap(topSet(est, 3), cleanTop); got < tc.minOverlap {
				t.Errorf("top-3 overlap = %d, want >= %d (clean %v vs %v)",
					got, tc.minOverlap, baseline.TopMetrics(3), est.TopMetrics(3))
			}
			dev := math.Abs(est.MaxThroughput-baseline.MaxThroughput) / baseline.MaxThroughput
			if dev > tc.maxDev {
				t.Errorf("throughput bound deviation = %.3f, want <= %.3f (%.4f vs clean %.4f)",
					dev, tc.maxDev, est.MaxThroughput, baseline.MaxThroughput)
			}
		})
	}
}

// TestCorruptedTrainingData pushes each structural fault class through
// TrainValidated: the quarantine layer must keep training viable and the
// resulting model must still rank the clean target's top bottleneck in
// its top-3.
func TestCorruptedTrainingData(t *testing.T) {
	setup(t)
	cleanTop1 := baseline.TopMetrics(1)[0].Metric
	faults := map[string]func(*Injector, core.Dataset) core.Dataset{
		"counter-wrap": func(in *Injector, d core.Dataset) core.Dataset {
			return in.CounterWrap(d, 0.10)
		},
		"nan-inject": func(in *Injector, d core.Dataset) core.Dataset {
			return in.NaNInject(d, 0.10)
		},
		"negative-time": func(in *Injector, d core.Dataset) core.Dataset {
			return in.NegativeTime(d, 0.10)
		},
		"drop-intervals": func(in *Injector, d core.Dataset) core.Dataset {
			return in.DropIntervals(d, 0.15)
		},
	}
	for name, corrupt := range faults {
		t.Run(name, func(t *testing.T) {
			bad := corrupt(New(7), trainData)
			opts := core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"}
			ens, rep, err := core.TrainValidated(bad, opts, core.ValidateOptions{})
			if err != nil {
				t.Fatalf("training on corrupted data: %v\n%s", err, rep.Summary())
			}
			est, err := estimate(ens, target)
			if err != nil {
				t.Fatalf("estimate with degraded model: %v", err)
			}
			if !topSet(est, 3)[cleanTop1] {
				t.Errorf("clean top bottleneck %q fell out of degraded top-3 %v",
					cleanTop1, est.TopMetrics(3))
			}
		})
	}
}

// TestCSVFaultsSurviveIngestion hammers the checked-in real-format
// fixture with line-level faults and asserts lenient ingestion still
// yields a trainable dataset while strict mode refuses it.
func TestCSVFaultsSurviveIngestion(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "ingest", "testdata", "skylake_interval.csv"))
	if err != nil {
		t.Fatal(err)
	}
	in := New(99)
	text := in.GarbageLines(in.TruncateLines(string(raw), 0.2), 0.2)

	res, err := ingest.ReadCSV(strings.NewReader(text), ingest.Options{})
	if err != nil {
		t.Fatalf("lenient ingest of faulted CSV: %v", err)
	}
	if res.Stats.Samples < 40 {
		t.Errorf("only %d samples survived (want >= 40)\n%s", res.Stats.Samples, res.Summary())
	}
	if res.Stats.ByClass["garbled"] == 0 {
		t.Errorf("expected garbled diagnostics, got %v", res.Stats.ByClass)
	}
	opts := core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"}
	if _, err := core.Train(res.Dataset, opts); err != nil {
		t.Errorf("surviving samples must train: %v", err)
	}

	if _, err := ingest.ReadCSV(strings.NewReader(text), ingest.Options{Mode: ingest.Strict}); err == nil {
		t.Error("strict mode must reject the faulted CSV")
	}
}

// TestDeterminism: the same seed must reproduce byte-identical
// corruption, and a different seed must not.
func TestDeterminism(t *testing.T) {
	setup(t)
	a := New(1).ScalingSpike(New(1).NaNInject(target, 0.1), 0.1)
	b := New(1).ScalingSpike(New(1).NaNInject(target, 0.1), 0.1)
	if !datasetEqual(a, b) {
		t.Error("same seed produced different corruption")
	}
	c := New(2).ScalingSpike(New(2).NaNInject(target, 0.1), 0.1)
	if datasetEqual(a, c) {
		t.Error("different seeds produced identical corruption")
	}

	text := "1.0,100,,cycles,1,100.00,,\n2.0,200,,instructions,1,100.00,,\n"
	t1 := New(5).TruncateLines(text, 0.9)
	t2 := New(5).TruncateLines(text, 0.9)
	if t1 != t2 {
		t.Error("same seed produced different truncation")
	}
}

// TestFaultsDoNotMutateInput: every dataset fault must copy, never alias,
// the input samples.
func TestFaultsDoNotMutateInput(t *testing.T) {
	setup(t)
	before := append([]core.Sample(nil), target.Samples...)
	in := New(3)
	in.CounterWrap(target, 1.0)
	in.ScalingSpike(target, 1.0)
	in.NaNInject(target, 1.0)
	in.NegativeTime(target, 1.0)
	in.ClockSkew(target, 1.0, 0.5)
	in.DuplicateIntervals(target, 1.0)
	if !reflect.DeepEqual(before, target.Samples) {
		t.Error("fault injection mutated its input dataset")
	}
}

func datasetEqual(a, b core.Dataset) bool {
	if len(a.Samples) != len(b.Samples) {
		return false
	}
	for i := range a.Samples {
		x, y := a.Samples[i], b.Samples[i]
		// NaN-tolerant comparison: NaN == NaN for our purposes.
		if x.Metric != y.Metric || x.Window != y.Window ||
			!eqNaN(x.T, y.T) || !eqNaN(x.W, y.W) || !eqNaN(x.M, y.M) {
			return false
		}
	}
	return true
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
