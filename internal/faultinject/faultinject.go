// Package faultinject deterministically corrupts SPIRE datasets and raw
// perf-stat CSV text the way real collections go wrong: dropped and
// duplicated intervals, 48-bit counter wraps, multiplex-scaling spikes,
// clock skew, NaN readings, and mid-line truncation. It exists so the
// ingestion and validation layers can be tested end-to-end: corrupt a
// clean collection, push it through ingest/validate/train/estimate, and
// assert the estimate stays within bounds of the clean baseline.
//
// Every fault is driven by a seedable PRNG, so a given (seed, input)
// pair always produces the same corruption — failures reproduce.
package faultinject

import (
	"math"
	"math/rand"
	"strings"

	"spire/internal/core"
)

// counterWrap mirrors pmu.CounterWidth: the modulus of a 48-bit PMU
// counter, the wrap the validation layer must catch.
const counterWrap = float64(uint64(1) << 48)

// Injector is a deterministic corruptor. The zero value is not usable;
// construct with New.
type Injector struct {
	rng *rand.Rand
}

// New returns an Injector whose fault choices are fully determined by
// seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// hit decides one Bernoulli trial at the given rate.
func (in *Injector) hit(rate float64) bool {
	return in.rng.Float64() < rate
}

// windows collects the distinct window tags of a dataset.
func windows(d core.Dataset) map[int]bool {
	ws := make(map[int]bool)
	for _, s := range d.Samples {
		ws[s.Window] = true
	}
	return ws
}

// DropIntervals removes every sample of each collection window with
// probability rate — a collector that stalled or lost intervals.
func (in *Injector) DropIntervals(d core.Dataset, rate float64) core.Dataset {
	drop := make(map[int]bool)
	for w := range windows(d) {
		if in.hit(rate) {
			drop[w] = true
		}
	}
	return d.Filter(func(s core.Sample) bool { return !drop[s.Window] })
}

// DuplicateIntervals re-appends every sample of each window with
// probability rate — a collector that flushed a buffer twice.
func (in *Injector) DuplicateIntervals(d core.Dataset, rate float64) core.Dataset {
	dup := make(map[int]bool)
	for w := range windows(d) {
		if in.hit(rate) {
			dup[w] = true
		}
	}
	out := core.Dataset{Samples: append([]core.Sample(nil), d.Samples...)}
	for _, s := range d.Samples {
		if dup[s.Window] {
			out.Add(s)
		}
	}
	return out
}

// CounterWrap adds the 48-bit counter modulus to each sample's metric
// count with probability rate — the raw-delta artifact of a counter that
// wrapped between reads.
func (in *Injector) CounterWrap(d core.Dataset, rate float64) core.Dataset {
	return in.mutate(d, rate, func(s *core.Sample) {
		s.M += counterWrap
	})
}

// ScalingSpike multiplies each sample's metric count by a 50-500x factor
// with probability rate — the extrapolation blow-up of an event that sat
// on a multiplexed counter for a sliver of the interval.
func (in *Injector) ScalingSpike(d core.Dataset, rate float64) core.Dataset {
	return in.mutate(d, rate, func(s *core.Sample) {
		s.M *= 50 + 450*in.rng.Float64()
	})
}

// ClockSkew perturbs each sample's period length by up to ±maxFrac with
// probability rate — jittered interval timestamps.
func (in *Injector) ClockSkew(d core.Dataset, rate, maxFrac float64) core.Dataset {
	return in.mutate(d, rate, func(s *core.Sample) {
		s.T *= 1 + maxFrac*(2*in.rng.Float64()-1)
	})
}

// NaNInject replaces each sample's metric count with NaN at the given
// rate — a torn read or downstream arithmetic on a sentinel.
func (in *Injector) NaNInject(d core.Dataset, rate float64) core.Dataset {
	return in.mutate(d, rate, func(s *core.Sample) {
		s.M = math.NaN()
	})
}

// NegativeTime negates each sample's period length at the given rate — a
// non-monotonic clock between interval reads.
func (in *Injector) NegativeTime(d core.Dataset, rate float64) core.Dataset {
	return in.mutate(d, rate, func(s *core.Sample) {
		s.T = -s.T
	})
}

// mutate applies fn to a copy of each sample chosen at the given rate.
func (in *Injector) mutate(d core.Dataset, rate float64, fn func(*core.Sample)) core.Dataset {
	out := core.Dataset{Samples: make([]core.Sample, len(d.Samples))}
	copy(out.Samples, d.Samples)
	for i := range out.Samples {
		if in.hit(rate) {
			fn(&out.Samples[i])
		}
	}
	return out
}

// TruncateLines cuts each non-comment line of a perf-stat CSV text at a
// random byte offset with probability rate — a collector killed
// mid-write.
func (in *Injector) TruncateLines(text string, rate float64) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") || !in.hit(rate) {
			continue
		}
		cut := 1 + in.rng.Intn(len(line))
		lines[i] = line[:cut]
	}
	return strings.Join(lines, "\n")
}

// garbagePool holds realistic non-CSV noise that ends up interleaved in
// captured perf output.
var garbagePool = []string{
	"perf: interrupted by signal, resuming",
	"Warning: some events weren't counted",
	"\x00\x00\x00\x00",
	"=== run 2 ===",
	"Killed",
}

// GarbageLines inserts a noise line before each existing line with
// probability rate — terminal chatter captured into the same stream.
func (in *Injector) GarbageLines(text string, rate float64) string {
	lines := strings.Split(text, "\n")
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		if in.hit(rate) {
			out = append(out, garbagePool[in.rng.Intn(len(garbagePool))])
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
