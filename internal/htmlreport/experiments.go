package htmlreport

import (
	"fmt"
	"html/template"

	"spire/internal/experiments"
)

// ExperimentsPage assembles the paper's tables and figures from a session
// into one self-contained dashboard (the HTML twin of spire-bench -all).
func ExperimentsPage(sess *experiments.Session) (*Page, error) {
	page := &Page{Title: "SPIRE — reproduced evaluation (DATE 2025)"}

	// Table I.
	rows1, err := sess.Table1()
	if err != nil {
		return nil, err
	}
	var t1 [][]string
	for _, r := range rows1 {
		set := "train"
		if r.Testing {
			set = "test"
		}
		t1 = append(t1, []string{
			r.Name, set, fmt.Sprintf("%.2f", r.IPC), r.Main.String(),
			fmt.Sprintf("%.0f%%", 100*r.TMA.Retiring),
			fmt.Sprintf("%.0f%%", 100*r.TMA.FrontEnd),
			fmt.Sprintf("%.0f%%", 100*r.TMA.BadSpeculation),
			fmt.Sprintf("%.0f%%", 100*r.TMA.MemoryBound),
			fmt.Sprintf("%.0f%%", 100*r.TMA.CoreBound),
		})
	}
	page.Sections = append(page.Sections, Section{
		Heading: "Table I — workloads and their main TMA bottleneck",
		Table:   HTMLTable([]string{"Workload", "Set", "IPC", "Main", "Ret", "FE", "BS", "Mem", "Core"}, t1),
	})

	// Table II.
	cols, err := sess.Table2()
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		var rows [][]string
		for i, e := range c.Top {
			rows = append(rows, []string{
				fmt.Sprintf("%d", i+1), fmt.Sprintf("%.2f", e.Estimate), e.Abbr, e.Metric, e.Area.String(),
			})
		}
		page.Sections = append(page.Sections, Section{
			Heading: fmt.Sprintf("Table II — %s (IPC %.2f, TMA: %s)", c.Workload, c.MeasuredIPC, c.TMAMain),
			Text: fmt.Sprintf("SPIRE estimate %.2f; dominant pool area %s; top-%d agreement with TMA %.0f%%.",
				c.SpireEstimate, c.DominantArea, len(c.Top), 100*c.FracMatchingTMA),
			Table: HTMLTable([]string{"Rank", "Mean est.", "Abbr", "Metric", "TMA area"}, rows),
		})
	}

	// Fig 2: classic roofline.
	fig2, err := sess.Fig2()
	if err != nil {
		return nil, err
	}
	apps := Series{Name: "apps", Scatter: true}
	for _, a := range fig2.Apps {
		apps.X = append(apps.X, a.Intensity)
		apps.Y = append(apps.Y, a.Throughput)
	}
	svg := SVGPlot(PlotOptions{
		Title: "Fig 2 — classic roofline", XLabel: "inst/byte", YLabel: "IPC",
		LogX: true, LogY: true,
	},
		Series{Name: "roof", X: fig2.Roof.X, Y: fig2.Roof.Y},
		Series{Name: "dram", X: fig2.DRAM.X, Y: fig2.DRAM.Y},
		Series{Name: "scalar", X: fig2.Scalar.X, Y: fig2.Scalar.Y},
		apps,
	)
	page.Sections = append(page.Sections, Section{
		Heading: "Fig 2 — classic roofline with two applications",
		Text: fmt.Sprintf("%s is %s; %s is %s.",
			fig2.Apps[0].Name, fig2.Bounds[fig2.Apps[0].Name],
			fig2.Apps[1].Name, fig2.Bounds[fig2.Apps[1].Name]),
		SVG: template.HTML(svg),
	})

	// Fig 7: learned rooflines.
	figs, err := sess.Fig7()
	if err != nil {
		return nil, err
	}
	for _, f := range figs {
		svg := SVGPlot(PlotOptions{
			Title: "Fig 7 — " + f.Abbr, XLabel: "operational intensity", YLabel: "IPC bound",
			LogX: true, LogY: true,
		},
			Series{Name: "fit", X: f.Curve.X, Y: f.Curve.Y},
			Series{Name: "samples", X: f.Samples.X, Y: f.Samples.Y, Scatter: true},
		)
		page.Sections = append(page.Sections, Section{
			Heading: fmt.Sprintf("Fig 7 — learned roofline for %s (%s)", f.Abbr, f.Metric),
			SVG:     template.HTML(svg),
		})
	}

	// Overhead.
	oh, err := sess.Overhead()
	if err != nil {
		return nil, err
	}
	page.Sections = append(page.Sections, Section{
		Heading: "Sampling overhead (paper: 1.6% avg, 4.6% max)",
		Text:    fmt.Sprintf("Measured mean %.2f%%, max %.2f%% across 27 workloads.", 100*oh.Mean, 100*oh.Max),
	})
	return page, nil
}
