// Package htmlreport renders SPIRE analyses as self-contained HTML pages
// with inline SVG plots — no external assets, suitable for attaching to a
// bug report or opening from a build directory.
package htmlreport

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named polyline or scatter for an SVG plot.
type Series struct {
	Name string
	X, Y []float64
	// Scatter draws points instead of a line.
	Scatter bool
}

// PlotOptions configures an SVG plot.
type PlotOptions struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int
	Height int
}

// palette cycles through line colours.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVGPlot renders the series as a standalone <svg> element.
func SVGPlot(opts PlotOptions, series ...Series) string {
	if opts.Width <= 0 {
		opts.Width = 640
	}
	if opts.Height <= 0 {
		opts.Height = 360
	}
	const mLeft, mRight, mTop, mBottom = 60, 16, 28, 44
	pw := float64(opts.Width - mLeft - mRight)
	ph := float64(opts.Height - mTop - mBottom)

	tx := func(v float64) (float64, bool) {
		if opts.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if opts.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	// Data ranges in transformed space.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Sprintf(`<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg"><text x="10" y="20">no plottable data</text></svg>`,
			opts.Width, opts.Height)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(mLeft) + (x-minX)/(maxX-minX)*pw }
	py := func(y float64) float64 { return float64(mTop) + ph - (y-minY)/(maxY-minY)*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" font-family="sans-serif" font-size="11">`,
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`, mLeft, esc(opts.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#333"/>`,
		mLeft, float64(mTop)+ph, opts.Width-mRight, float64(mTop)+ph)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="#333"/>`,
		mLeft, mTop, mLeft, float64(mTop)+ph)
	// Ticks: 5 per axis in transformed space.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		lx, ly := fx, fy
		if opts.LogX {
			lx = math.Pow(10, fx)
		}
		if opts.LogY {
			ly = math.Pow(10, fy)
		}
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`,
			px(fx), float64(mTop), px(fx), float64(mTop)+ph)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`,
			px(fx), float64(mTop)+ph+16, fmtTick(lx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`,
			mLeft, py(fy), float64(opts.Width-mRight), py(fy))
		fmt.Fprintf(&b, `<text x="%d" y="%g" text-anchor="end">%s</text>`,
			mLeft-6, py(fy)+4, fmtTick(ly))
	}
	if opts.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle">%s</text>`,
			float64(mLeft)+pw/2, opts.Height-8, esc(opts.XLabel))
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`,
			float64(mTop)+ph/2, float64(mTop)+ph/2, esc(opts.YLabel))
	}

	// Series.
	for si, s := range series {
		color := palette[si%len(palette)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		if s.Scatter {
			for i := 0; i < n; i++ {
				x, okx := tx(s.X[i])
				y, oky := ty(s.Y[i])
				if !okx || !oky {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.6"/>`, px(x), py(y), color)
			}
		} else {
			var pts []string
			for i := 0; i < n; i++ {
				x, okx := tx(s.X[i])
				y, oky := ty(s.Y[i])
				if !okx || !oky {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(y)))
			}
			if len(pts) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
					strings.Join(pts, " "), color)
			}
		}
		// Legend.
		ly := mTop + 14 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, opts.Width-mRight-130, ly-9, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, opts.Width-mRight-115, ly, esc(s.Name))
	}
	b.WriteString("</svg>")
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.01:
		return fmt.Sprintf("%.1e", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
