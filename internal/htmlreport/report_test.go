package htmlreport

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spire/internal/core"
	"spire/internal/experiments"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

func TestSVGPlotBasics(t *testing.T) {
	svg := SVGPlot(PlotOptions{Title: "T", XLabel: "x", YLabel: "y"},
		Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		Series{Name: "dots", X: []float64{1}, Y: []float64{2}, Scatter: true},
	)
	for _, want := range []string{"<svg", "</svg>", "polyline", "circle", "line", "dots", "T"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestSVGPlotLogScalesSkipNonPositive(t *testing.T) {
	svg := SVGPlot(PlotOptions{LogX: true, LogY: true},
		Series{Name: "s", X: []float64{0, 1, 10, 100}, Y: []float64{-1, 1, 10, 100}},
	)
	if !strings.Contains(svg, "polyline") {
		t.Error("log plot should still draw the positive points")
	}
}

func TestSVGPlotEmpty(t *testing.T) {
	svg := SVGPlot(PlotOptions{}, Series{Name: "empty"})
	if !strings.Contains(svg, "no plottable data") {
		t.Errorf("empty plot should say so: %s", svg)
	}
}

func TestSVGPlotEscapesLabels(t *testing.T) {
	svg := SVGPlot(PlotOptions{Title: `<script>"x"&y`},
		Series{Name: "<b>", X: []float64{1, 2}, Y: []float64{1, 2}})
	if strings.Contains(svg, "<script>") || strings.Contains(svg, "<b>") {
		t.Error("labels not escaped")
	}
}

func TestHTMLTableEscapes(t *testing.T) {
	tab := string(HTMLTable([]string{"<h>"}, [][]string{{"<td-attack>"}}))
	if strings.Contains(tab, "<h>") || strings.Contains(tab, "<td-attack>") {
		t.Error("cells not escaped")
	}
	if !strings.Contains(tab, "&lt;h&gt;") {
		t.Error("escaped header missing")
	}
}

func TestAnalysisPageEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline skipped in -short mode")
	}
	// Train a small model and analyze a workload with windows.
	var train core.Dataset
	for _, name := range []string{"fftw", "remhos", "graph500", "arrayfire-blas"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(uarch.Default(), spec.Build(0.05), 3)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := perfstat.Collect(s, name, perfstat.Options{
			IntervalCycles: 20_000, MaxCycles: 600_000, Multiplex: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		train.Merge(d)
	}
	ens, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workloads.ByName("onnx")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.05), 3)
	if err != nil {
		t.Fatal(err)
	}
	wl, _, err := perfstat.Collect(s, "onnx", perfstat.Options{
		IntervalCycles: 20_000, MaxCycles: 600_000, Multiplex: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	page, err := AnalysisPage("onnx analysis", ens, wl, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := page.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "onnx analysis", "candidate bottlenecks",
		"<svg", "Roofline:", "90% CI", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Multiple windows -> the timeline section must appear.
	if !strings.Contains(out, "Bottleneck timeline") {
		t.Error("timeline section missing for a windowed dataset")
	}
}

func TestAnalysisPageErrors(t *testing.T) {
	var d core.Dataset
	d.Add(core.Sample{Metric: "m", T: 1, W: 1, M: 1})
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalysisPage("x", ens, core.Dataset{}, 5); err == nil {
		t.Error("expected error for empty workload")
	}
}

func TestRooflineSVGHandlesInfOperatingPoint(t *testing.T) {
	var d core.Dataset
	for i := 1.0; i <= 8; i *= 2 {
		d.Add(core.Sample{Metric: "m", T: 1, W: i, M: 1})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svg := rooflineSVG(ens.Rooflines["m"], math.Inf(1), 2)
	if !strings.Contains(svg, "<svg") {
		t.Error("svg not produced")
	}
}

func TestExperimentsPage(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline skipped in -short mode")
	}
	sess := experiments.NewSession(experiments.QuickConfig())
	page, err := ExperimentsPage(sess)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := page.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Fig 2", "Fig 7", "Sampling overhead",
		"tnn", "onnx", "<svg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
