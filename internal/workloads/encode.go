package workloads

import (
	"encoding/json"
	"fmt"
	"io"

	"spire/internal/isa"
)

// MarshalJSON writes the mix keyed by op mnemonic ("fp_add": 3).
func (m Mix) MarshalJSON() ([]byte, error) {
	named := make(map[string]int, len(m))
	for op, w := range m {
		named[op.String()] = w
	}
	return json.Marshal(named)
}

// UnmarshalJSON accepts op mnemonics as keys.
func (m *Mix) UnmarshalJSON(data []byte) error {
	var named map[string]int
	if err := json.Unmarshal(data, &named); err != nil {
		return err
	}
	out := make(Mix, len(named))
	for name, w := range named {
		op, ok := isa.ParseOp(name)
		if !ok {
			return fmt.Errorf("workloads: unknown op %q in mix", name)
		}
		out[op] = w
	}
	*m = out
	return nil
}

// patternNames maps Pattern values to their JSON spellings.
var patternNames = map[Pattern]string{
	PatternNone:    "none",
	PatternStream:  "stream",
	PatternStrided: "strided",
	PatternRandom:  "random",
}

// String names the pattern.
func (p Pattern) String() string {
	if n, ok := patternNames[p]; ok {
		return n
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// MarshalJSON writes the pattern by name.
func (p Pattern) MarshalJSON() ([]byte, error) {
	n, ok := patternNames[p]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown pattern %d", p)
	}
	return json.Marshal(n)
}

// UnmarshalJSON accepts pattern names.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for v, n := range patternNames {
		if n == name {
			*p = v
			return nil
		}
	}
	return fmt.Errorf("workloads: unknown pattern %q", name)
}

// WriteJSON serializes the kernel parameters so custom workloads can be
// authored and versioned as files (see perfstat -kernel).
func (k *Kernel) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(k)
}

// ReadKernel parses and validates a kernel definition.
func ReadKernel(r io.Reader) (*Kernel, error) {
	var k Kernel
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&k); err != nil {
		return nil, fmt.Errorf("workloads: decoding kernel: %w", err)
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &k, nil
}
