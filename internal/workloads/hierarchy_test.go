package workloads

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"spire/internal/calibrate"
	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/tma"
	"spire/internal/uarch"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// hierModel caches the calibrated hierarchical model (machine discovery
// plus both surface sweeps) across tests.
var hierModel = struct {
	once sync.Once
	ens  *core.Ensemble
	err  error
}{}

func hierarchyModel(t *testing.T) *core.Ensemble {
	t.Helper()
	hierModel.once.Do(func() {
		cfg := uarch.Default()
		hm, err := calibrate.DiscoverHierarchy(cfg, calibrate.Options{})
		if err != nil {
			hierModel.err = err
			return
		}
		sp, err := calibrate.SweepSparsity(cfg, calibrate.Options{})
		if err != nil {
			hierModel.err = err
			return
		}
		vw, err := calibrate.SweepVecWidthMix(cfg, calibrate.Options{})
		if err != nil {
			hierModel.err = err
			return
		}
		hierModel.ens, hierModel.err = hm.Model(sp, vw)
	})
	if hierModel.err != nil {
		t.Fatal(hierModel.err)
	}
	return hierModel.ens
}

// paramEvents maps surface parameter metrics to their oracle counter.
var paramEvents = map[string]pmu.EventID{
	"br_misp_retired.all_branches":      pmu.EvBrMispRetired,
	"uops_issued.vector_width_mismatch": pmu.EvVecWidthMismatch,
}

var levelEvents = map[string]pmu.EventID{
	"mem_load_retired.l1_hit":  pmu.EvLoadL1Hit,
	"mem_load_retired.l2_hit":  pmu.EvLoadL2Hit,
	"mem_load_retired.l3_hit":  pmu.EvLoadL3Hit,
	"mem_load_retired.l3_miss": pmu.EvLoadL3Miss,
}

// runHierarchySpec executes one roster kernel on the default core and
// builds its estimation dataset from the oracle counters: one sample per
// hierarchy-level traffic metric plus the surface parameter metric.
func runHierarchySpec(t *testing.T, ens *core.Ensemble, hs HierarchySpec) (core.Dataset, pmu.Counts) {
	t.Helper()
	prog := hs.Build(1)
	s, err := sim.New(uarch.Default(), prog, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(1 << 32)
	if !res.Drained {
		t.Fatalf("%s did not drain", hs.Name)
	}
	cycles := float64(res.Cycles)
	insts := float64(res.Instructions)

	var data core.Dataset
	for _, lv := range ens.Hierarchy.Levels {
		data.Samples = append(data.Samples, core.Sample{
			Metric: lv.Metric, T: cycles, W: insts,
			M: float64(res.Counts.Read(levelEvents[lv.Metric])),
		})
	}
	for metric, ev := range paramEvents {
		data.Samples = append(data.Samples, core.Sample{
			Metric: metric, T: cycles, W: insts,
			M: float64(res.Counts.Read(ev)),
		})
	}
	return data, res.Counts
}

// hierarchyVerdict is one golden-file row.
type hierarchyVerdict struct {
	Name           string  `json:"name"`
	BindingLevel   string  `json:"binding_level"`
	TMALevel       string  `json:"tma_level"`
	TMAAgree       bool    `json:"tma_agree"`
	TMAVacuous     bool    `json:"tma_vacuous"`
	BindingSurface string  `json:"binding_surface,omitempty"`
	MemoryBound    float64 `json:"-"`
}

// TestHierarchyGolden is the per-kernel regression: every roster kernel
// must bind at its engineered level, the TMA cross-check must agree, and
// the full verdict set must match the checked-in golden file
// (regenerate with -update).
func TestHierarchyGolden(t *testing.T) {
	ens := hierarchyModel(t)
	var got []hierarchyVerdict

	for _, hs := range Hierarchy() {
		data, counts := runHierarchySpec(t, ens, hs)
		est, err := ens.Estimate(data)
		if err != nil {
			t.Fatalf("%s: %v", hs.Name, err)
		}
		if est.Hierarchy == nil {
			t.Fatalf("%s: no hierarchy estimate", hs.Name)
		}
		if got := est.Hierarchy.BindingLevel; got != hs.ExpectedLevel {
			t.Errorf("%s: binding level %s, engineered for %s", hs.Name, got, hs.ExpectedLevel)
		}
		v, err := tma.CrossCheck(est.Hierarchy, counts, uarch.Default().IssueWidth)
		if err != nil {
			t.Fatalf("%s: cross-check: %v", hs.Name, err)
		}
		if !v.Agree {
			t.Errorf("%s: TMA disagrees: spire %s (share %.2f) vs tma %s (share %.2f)",
				hs.Name, v.SpireLevel, v.SpireShare, v.TMALevel, v.TMAShare)
		}

		row := hierarchyVerdict{
			Name: hs.Name, BindingLevel: est.Hierarchy.BindingLevel,
			TMALevel: v.TMALevel, TMAAgree: v.Agree, TMAVacuous: v.Vacuous,
		}
		// A surface kernel must surface its own parameter as binding:
		// the parameterized ceiling sits below the flat roof.
		for _, se := range est.Hierarchy.Surfaces {
			if se.Binding && se.Name == hs.Param {
				row.BindingSurface = se.Name
			}
		}
		if hs.Param != "" && row.BindingSurface != hs.Param {
			t.Errorf("%s: surface %q not binding (surfaces: %+v)", hs.Name, hs.Param, est.Hierarchy.Surfaces)
		}
		got = append(got, row)
	}

	path := filepath.Join("testdata", "hierarchy_golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []hierarchyVerdict
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("verdicts drifted from golden file (regenerate with -update)\n got: %+v\nwant: %+v", got, want)
	}
}

// TestHierarchyRoster pins the roster's shape and that every kernel
// passes its own validation.
func TestHierarchyRoster(t *testing.T) {
	specs := Hierarchy()
	if len(specs) != 7 {
		t.Fatalf("roster has %d kernels, want 7", len(specs))
	}
	levels := map[string]int{}
	params := map[string]int{}
	for _, hs := range specs {
		k := hs.Spec.Kernel()
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", hs.Name, err)
		}
		levels[hs.ExpectedLevel]++
		if hs.Param != "" {
			params[hs.Param]++
		}
	}
	for _, lv := range []string{"L1", "L2", "L3", "DRAM"} {
		if levels[lv] == 0 {
			t.Errorf("no kernel targets %s", lv)
		}
	}
	for _, p := range []string{"sparsity", "vec-width-mix"} {
		if params[p] != 1 {
			t.Errorf("surface param %s covered by %d kernels, want 1", p, params[p])
		}
	}
	// Hierarchy kernels stay out of the paper's Table I roster.
	for _, s := range All() {
		for _, hs := range specs {
			if s.Name == hs.Name {
				t.Errorf("%s leaked into the main suite", s.Name)
			}
		}
	}
}
