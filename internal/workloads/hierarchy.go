package workloads

// The hierarchy roster: kernels engineered to be bound by one specific
// memory level (or to exercise one roofline-surface parameter), used to
// validate the hierarchical estimator end to end. It is deliberately
// separate from the paper's 27-workload suite so the Table I counts stay
// pinned.

import (
	"spire/internal/isa"
	"spire/internal/pmu"
)

// HierarchySpec is a Spec plus the hierarchical ground truth the kernel
// is engineered for.
type HierarchySpec struct {
	Spec
	// ExpectedLevel is the memory level the kernel is bound by.
	ExpectedLevel string
	// Param names the roofline-surface parameter the kernel exercises
	// ("" for pure hierarchy kernels).
	Param string
}

// Line-granular streams (one load per 64 B line) sized against the
// default core's caches: L1D 32 KiB (512 lines), L2 1 MiB (16 Ki lines),
// L3 8 MiB (128 Ki lines). Each streaming kernel's footprint overflows
// every level above its target and fits the target, so its steady-state
// traffic is served there.
var hierarchy = []HierarchySpec{
	{
		ExpectedLevel: "L1",
		Spec: Spec{
			Name: "hier-l1-resident", Config: "16 KiB chained stream", Expected: pmu.AreaMemory,
			kernel: Kernel{
				TotalInsts: 200_000, BodyInsts: 256,
				Mix:      Mix{isa.OpIntALU: 6, isa.OpFPAdd: 2},
				MemEvery: 2, WorkingSet: 16 << 10, Pattern: PatternStrided, Stride: 64,
				// Chained loads expose the serving level's latency to the
				// stall counters, so the TMA side sees the same level the
				// traffic rooflines do.
				Chained: true,
			},
		},
	},
	{
		ExpectedLevel: "L2",
		Spec: Spec{
			Name: "hier-l2-stream", Config: "128 KiB chained stream", Expected: pmu.AreaMemory,
			kernel: Kernel{
				TotalInsts: 400_000, BodyInsts: 256,
				Mix:      Mix{isa.OpIntALU: 6, isa.OpFPAdd: 2},
				MemEvery: 2, WorkingSet: 128 << 10, Pattern: PatternStrided, Stride: 64,
				Chained: true,
			},
		},
	},
	{
		ExpectedLevel: "L3",
		Spec: Spec{
			Name: "hier-l3-stream", Config: "1.5 MiB stream", Expected: pmu.AreaMemory,
			kernel: Kernel{
				// Long enough that the first cold pass over the footprint is
				// diluted and steady-state L3 stalls dominate the TMA split.
				TotalInsts: 1_200_000, BodyInsts: 256,
				Mix:      Mix{isa.OpIntALU: 6, isa.OpFPAdd: 2},
				MemEvery: 2, WorkingSet: 1536 << 10, Pattern: PatternStrided, Stride: 64,
			},
		},
	},
	{
		ExpectedLevel: "DRAM",
		Spec: Spec{
			Name: "hier-dram-stream", Config: "512 MiB cold stream", Expected: pmu.AreaMemory,
			kernel: Kernel{
				TotalInsts: 80_000, BodyInsts: 256,
				Mix:      Mix{isa.OpIntALU: 6, isa.OpFPAdd: 2},
				MemEvery: 2, WorkingSet: 512 << 20, Pattern: PatternStrided, Stride: 64,
			},
		},
	},
	{
		ExpectedLevel: "DRAM",
		Spec: Spec{
			Name: "hier-dram-chase", Config: "256 MiB pointer chase", Expected: pmu.AreaMemory,
			kernel: Kernel{
				TotalInsts: 40_000, BodyInsts: 128,
				Mix:      Mix{isa.OpIntALU: 4},
				MemEvery: 3, WorkingSet: 256 << 20, Pattern: PatternRandom, Chained: true,
			},
		},
	},
	{
		ExpectedLevel: "L1", Param: "sparsity",
		Spec: Spec{
			Name: "hier-sparse", Config: "zero-skipping SpMV", Expected: pmu.AreaBadSpeculation,
			kernel: Kernel{
				TotalInsts: 120_000, BodyInsts: 192,
				Mix:         Mix{isa.OpVecFMA: 4, isa.OpIntALU: 3},
				BranchEvery: 3, TakenProb: 0.5,
				MemEvery: 8, WorkingSet: 16 << 10, Pattern: PatternStrided, Stride: 64,
				VecWidths: []uint16{256},
			},
		},
	},
	{
		ExpectedLevel: "L1", Param: "vec-width-mix",
		Spec: Spec{
			Name: "hier-mixed-width", Config: "SSE/AVX-512 interleave", Expected: pmu.AreaCore,
			kernel: Kernel{
				TotalInsts: 120_000, BodyInsts: 192,
				Mix:      Mix{isa.OpVecFMA: 6, isa.OpIntALU: 2},
				MemEvery: 8, WorkingSet: 16 << 10, Pattern: PatternStrided, Stride: 64,
				VecWidths: []uint16{128, 512},
			},
		},
	},
}

// Hierarchy returns the hierarchy validation roster in declaration
// order: one kernel per memory-level regime plus one per surface
// parameter.
func Hierarchy() []HierarchySpec {
	out := make([]HierarchySpec, len(hierarchy))
	copy(out, hierarchy)
	return out
}
