package workloads

import (
	"fmt"
	"sort"

	"spire/internal/isa"
	"spire/internal/pmu"
)

// Spec describes one suite workload: the kernel parameters plus the
// paper-facing metadata (Table I name/configuration and the main TMA
// bottleneck the kernel is engineered to exhibit).
type Spec struct {
	// Name and Config mirror the paper's Table I rows.
	Name   string
	Config string
	// Expected is the main level-1 TMA bottleneck the kernel targets.
	Expected pmu.Area
	// Testing marks the four held-out test workloads.
	Testing bool
	// kernel is the prototype; Build copies it.
	kernel Kernel
}

// Build returns a fresh program for the workload. scale multiplies the
// dynamic instruction count (1.0 = the standard experiment length);
// fractional scales produce shorter runs for tests.
func (s Spec) Build(scale float64) isa.Program {
	k := s.kernel // copy
	k.KName = s.Name
	n := int(float64(k.TotalInsts) * scale)
	if n < 2000 {
		n = 2000
	}
	k.TotalInsts = n
	// Clear runtime state so the copy starts clean.
	k.body, k.memSlot, k.rng = nil, nil, nil
	k.pos, k.addr = 0, 0
	return &k
}

// Kernel returns a copy of the underlying kernel parameters (for
// inspection and tests).
func (s Spec) Kernel() Kernel {
	k := s.kernel
	k.KName = s.Name
	k.body, k.memSlot, k.rng = nil, nil, nil
	return k
}

const stdInsts = 400_000

// suite is the full 27-workload roster. Training workloads span the four
// bottleneck families; the four test workloads are the strongest examples
// of their family, as in the paper (§IV).
var suite = []Spec{
	// --- training: front-end flavoured --------------------------------
	{
		Name: "llamafile", Config: "wizardcoder-python", Expected: pmu.AreaFrontEnd,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 12000,
			Mix:      Mix{isa.OpIntALU: 5, isa.OpVecFMA: 3, isa.OpIntMul: 1},
			MemEvery: 9, WorkingSet: 1 << 22, Pattern: PatternStream,
			VecWidths: []uint16{256},
		},
	},
	{
		Name: "scikit-featexp", Config: "Feature Expansions", Expected: pmu.AreaFrontEnd,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 20000,
			Mix:      Mix{isa.OpIntALU: 6, isa.OpFPMul: 2, isa.OpFPAdd: 2},
			MemEvery: 10, WorkingSet: 1 << 20, Pattern: PatternStream,
		},
	},
	{
		Name: "openvino-face", Config: "Face Detect. F16-I8", Expected: pmu.AreaFrontEnd,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 9000,
			Mix:       Mix{isa.OpVecFMA: 4, isa.OpVecALU: 3, isa.OpIntALU: 3, isa.OpMicrocoded: 1},
			MicroUops: 6,
			MemEvery:  10, WorkingSet: 1 << 17, Pattern: PatternStream,
			VecWidths: []uint16{256},
		},
	},
	{
		Name: "tensorflow-lite", Config: "Mobilenet Quant", Expected: pmu.AreaFrontEnd,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 7000,
			Mix:      Mix{isa.OpVecALU: 5, isa.OpIntALU: 4, isa.OpIntMul: 2},
			MemEvery: 9, WorkingSet: 1 << 17, Pattern: PatternStream,
			VecWidths: []uint16{128},
		},
	},

	// --- training: bad-speculation flavoured --------------------------
	{
		Name: "numenta-nab", Config: "Relative Entropy", Expected: pmu.AreaBadSpeculation,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:         Mix{isa.OpFPAdd: 3, isa.OpFPMul: 2, isa.OpIntALU: 4},
			BranchEvery: 6, TakenProb: 0.5,
			MemEvery: 11, WorkingSet: 1 << 16, Pattern: PatternRandom,
		},
	},
	{
		Name: "mafft", Config: "", Expected: pmu.AreaBadSpeculation,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 128,
			Mix:         Mix{isa.OpIntALU: 8, isa.OpIntMul: 1},
			BranchEvery: 4, TakenProb: 0.45,
			MemEvery: 9, WorkingSet: 1 << 17, Pattern: PatternRandom,
		},
	},
	{
		Name: "graph500", Config: "Scale: 29", Expected: pmu.AreaBadSpeculation,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 160,
			Mix:         Mix{isa.OpIntALU: 7},
			BranchEvery: 5, TakenProb: 0.5,
			MemEvery: 7, WorkingSet: 1 << 23, Pattern: PatternRandom,
		},
	},

	// --- training: memory flavoured -----------------------------------
	{
		Name: "remhos", Config: "Sample Remap", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 64,
			Mix:      Mix{isa.OpFPAdd: 3, isa.OpFPMul: 2, isa.OpIntALU: 2},
			MemEvery: 3, WorkingSet: 64 << 20, Pattern: PatternStream,
		},
	},
	{
		Name: "rodinia-cfd", Config: "CFD Solver", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:      Mix{isa.OpFPAdd: 4, isa.OpFPMul: 3, isa.OpIntALU: 2},
			MemEvery: 3, StoreFrac: 0.3, WorkingSet: 96 << 20, Pattern: PatternStream,
		},
	},
	{
		Name: "parboil-stencil", Config: "Stencil", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 80,
			Mix:      Mix{isa.OpFPAdd: 5, isa.OpIntALU: 2},
			MemEvery: 2, StoreFrac: 0.2, WorkingSet: 48 << 20, Pattern: PatternStrided, Stride: 4096,
		},
	},
	{
		Name: "heffte", Config: "r2c, FFTW, F64, 256", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 128,
			Mix:      Mix{isa.OpFPAdd: 3, isa.OpFPMul: 3, isa.OpIntALU: 2},
			MemEvery: 3, WorkingSet: 32 << 20, Pattern: PatternStrided, Stride: 8192,
		},
	},
	{
		Name: "faiss-sift1m", Config: "demo_sift1M", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:      Mix{isa.OpVecALU: 3, isa.OpIntALU: 4},
			MemEvery: 3, WorkingSet: 128 << 20, Pattern: PatternRandom, Chained: true,
			VecWidths: []uint16{256},
		},
	},
	{
		Name: "faiss-polysemous", Config: "polysemous_sift1m", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 112,
			Mix:      Mix{isa.OpIntALU: 6, isa.OpVecALU: 2},
			MemEvery: 4, WorkingSet: 64 << 20, Pattern: PatternRandom, Chained: true,
			VecWidths: []uint16{256},
		},
	},
	{
		Name: "scikit-randproj", Config: "Random Projections", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 72,
			Mix:      Mix{isa.OpFPMul: 4, isa.OpFPAdd: 3, isa.OpIntALU: 2},
			MemEvery: 3, WorkingSet: 80 << 20, Pattern: PatternStream,
		},
	},
	{
		Name: "onednn-ip3d", Config: "IP Shapes 3D", Expected: pmu.AreaMemory,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 128,
			Mix:      Mix{isa.OpVecFMA: 5, isa.OpIntALU: 2},
			MemEvery: 3, WorkingSet: 64 << 20, Pattern: PatternStream,
			VecWidths: []uint16{512},
		},
	},

	// --- training: core flavoured --------------------------------------
	{
		Name: "qmcpack", Config: "O_ae_pyscf_UHF", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:      Mix{isa.OpFPDiv: 1, isa.OpFPMul: 4, isa.OpFPAdd: 4},
			DepChain: true,
			MemEvery: 16, WorkingSet: 1 << 14, Pattern: PatternStream,
		},
	},
	{
		Name: "scikit-sgdsvm", Config: "SGDOneClassSVM", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 80,
			Mix:      Mix{isa.OpFPMul: 5, isa.OpFPAdd: 4},
			DepChain: true,
			MemEvery: 16, WorkingSet: 1 << 14, Pattern: PatternStream,
		},
	},
	{
		Name: "lammps", Config: "Model: 20k Atoms", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 128,
			Mix:       Mix{isa.OpFMA: 5, isa.OpFPMul: 3, isa.OpFPDiv: 1, isa.OpIntALU: 2, isa.OpMicrocoded: 1},
			MicroUops: 6,
			DepChain:  true,
			MemEvery:  14, WorkingSet: 1 << 14, Pattern: PatternStream,
		},
	},
	{
		Name: "npb-bt", Config: "BT.C", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 160,
			Mix:      Mix{isa.OpFPAdd: 4, isa.OpFPMul: 4, isa.OpFPDiv: 1},
			DepChain: true,
			MemEvery: 16, WorkingSet: 1 << 14, Pattern: PatternStream,
		},
	},
	{
		Name: "parboil-mri", Config: "MRI Gridding", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:       Mix{isa.OpFPDiv: 2, isa.OpFPMul: 3, isa.OpFPAdd: 3, isa.OpIntALU: 2, isa.OpMicrocoded: 1},
			MicroUops: 8,
			MemEvery:  12, WorkingSet: 1 << 19, Pattern: PatternStrided, Stride: 512,
		},
	},
	{
		Name: "openvino-age", Config: "Age Gen. Recog. F16", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 112,
			Mix:      Mix{isa.OpVecFMA: 6, isa.OpVecALU: 2, isa.OpIntALU: 2},
			MemEvery: 14, WorkingSet: 1 << 15, Pattern: PatternStream,
			VecWidths: []uint16{256, 512},
		},
	},
	{
		Name: "arrayfire-blas", Config: "BLAS CPU", Expected: pmu.AreaRetiring,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 64,
			Mix:      Mix{isa.OpIntALU: 6, isa.OpVecFMA: 3},
			MemEvery: 12, WorkingSet: 1 << 14, Pattern: PatternStream,
			VecWidths: []uint16{512},
		},
	},
	{
		Name: "fftw", Config: "Stock, 1D FFT, 4096", Expected: pmu.AreaCore,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 144,
			Mix:      Mix{isa.OpFPAdd: 4, isa.OpFPMul: 4, isa.OpIntALU: 2},
			DepChain: true,
			MemEvery: 12, WorkingSet: 1 << 14, Pattern: PatternStrided, Stride: 128,
		},
	},

	// --- testing: the strongest example of each bottleneck -------------
	{
		Name: "tnn", Config: "SqueezeNet v1.1", Expected: pmu.AreaFrontEnd, Testing: true,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 16000,
			Mix:      Mix{isa.OpIntALU: 5, isa.OpVecALU: 3, isa.OpVecFMA: 2},
			MemEvery: 10, WorkingSet: 1 << 20, Pattern: PatternStream,
			VecWidths: []uint16{256},
		},
	},
	{
		Name: "scikit-sparsify", Config: "Sparsify", Expected: pmu.AreaBadSpeculation, Testing: true,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 80,
			Mix:         Mix{isa.OpIntALU: 6, isa.OpFPAdd: 2},
			BranchEvery: 3, TakenProb: 0.5,
			MemEvery: 10, WorkingSet: 1 << 16, Pattern: PatternRandom,
		},
	},
	{
		Name: "onnx", Config: "T5 Encoder, Std.", Expected: pmu.AreaMemory, Testing: true,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 96,
			Mix:      Mix{isa.OpVecFMA: 3, isa.OpVecALU: 2, isa.OpIntALU: 2},
			MemEvery: 2, WorkingSet: 192 << 20, Pattern: PatternStream,
			VecWidths: []uint16{256, 512},
		},
	},
	{
		Name: "parboil-cutcp", Config: "CUTCP", Expected: pmu.AreaCore, Testing: true,
		kernel: Kernel{
			TotalInsts: stdInsts, BodyInsts: 112,
			Mix:       Mix{isa.OpFPDiv: 2, isa.OpFPMul: 3, isa.OpFPAdd: 3, isa.OpMicrocoded: 1},
			MicroUops: 10,
			DepChain:  true,
			MemEvery:  16, LockedFrac: 0.35, WorkingSet: 1 << 14, Pattern: PatternStream,
		},
	},
}

// All returns every workload spec, training first then testing, each in
// declaration order.
func All() []Spec {
	out := make([]Spec, len(suite))
	copy(out, suite)
	sort.SliceStable(out, func(i, j int) bool {
		return !out[i].Testing && out[j].Testing
	})
	return out
}

// Training returns the 23 training workloads.
func Training() []Spec {
	var out []Spec
	for _, s := range suite {
		if !s.Testing {
			out = append(out, s)
		}
	}
	return out
}

// Testing returns the 4 held-out test workloads.
func Testing() []Spec {
	var out []Spec
	for _, s := range suite {
		if s.Testing {
			out = append(out, s)
		}
	}
	return out
}

// ByName finds a workload spec.
func ByName(name string) (Spec, error) {
	for _, s := range suite {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names in suite order.
func Names() []string {
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}
