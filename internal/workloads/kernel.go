// Package workloads provides the 27 synthetic kernels that stand in for
// the paper's Phoronix HPC benchmark suite (Table I). Each kernel is a
// seeded, deterministic isa.Program engineered to exhibit a specific main
// microarchitectural bottleneck on the simulated core — the property the
// paper's workload selection was based on ("we chose our 27 workloads
// because they exhibit a variety of bottlenecks").
package workloads

import (
	"fmt"
	"math/rand"

	"spire/internal/isa"
)

// Pattern selects a kernel's data-access pattern.
type Pattern uint8

const (
	// PatternNone: the kernel performs no data memory accesses.
	PatternNone Pattern = iota
	// PatternStream walks the working set sequentially (bandwidth-bound
	// when the set exceeds the caches).
	PatternStream
	// PatternStrided walks with a fixed stride (defeats spatial
	// locality).
	PatternStrided
	// PatternRandom touches uniformly random lines (latency-bound when
	// combined with Chained).
	PatternRandom
)

// Mix is a weighted op mix for a kernel's loop body. Weights need not be
// normalized.
type Mix map[isa.Op]int

// Kernel is a parameterized synthetic workload: a fixed loop body
// (constant code footprint, stable PCs for the DSB, I-cache and branch
// predictors) replayed with dynamic addresses and branch outcomes.
type Kernel struct {
	// KName is the workload name.
	KName string
	// TotalInsts is the dynamic instruction count of one run.
	TotalInsts int
	// BodyInsts is the static loop body size; the code footprint is
	// BodyInsts * 4 bytes, which determines DSB and L1I behaviour.
	BodyInsts int
	// CodeBase is the body's starting PC.
	CodeBase uint64
	// Mix weights the non-branch, non-memory ops in the body.
	Mix Mix
	// MemEvery places a memory op every N body slots (0 = none).
	MemEvery int
	// StoreFrac is the fraction of memory ops that are stores.
	StoreFrac float64
	// LockedFrac is the fraction of loads that are locked (atomic).
	LockedFrac float64
	// WorkingSet is the data footprint in bytes.
	WorkingSet uint64
	// Pattern is the access pattern; Stride applies to PatternStrided.
	Pattern Pattern
	Stride  uint64
	// Chained serializes loads through a register (pointer-chase
	// dependence).
	Chained bool
	// BranchEvery places a conditional branch every N body slots
	// (0 = none); TakenProb sets its outcome distribution (0 or 1 are
	// fully predictable, 0.5 is unpredictable).
	BranchEvery int
	TakenProb   float64
	// DepChain serializes compute ops through one register, limiting
	// ILP.
	DepChain bool
	// VecWidths lists SIMD widths used round-robin by vector ops; more
	// than one width triggers width-mismatch stalls.
	VecWidths []uint16
	// MicroUops is the uop expansion of microcoded ops in the mix.
	MicroUops int
	// NoLoopBranch suppresses the implicit loop back-edge branch that
	// normally terminates each body iteration (almost-always-taken,
	// highly predictable — like a real loop's bottom branch).
	NoLoopBranch bool

	// runtime state
	body    []isa.Inst
	memSlot []bool // body slots that are memory ops
	rng     *rand.Rand
	pos     int
	addr    uint64
}

// Name implements isa.Program.
func (k *Kernel) Name() string { return k.KName }

// Reset implements isa.Program: it rebuilds the static body
// deterministically from the seed and rewinds the dynamic state.
func (k *Kernel) Reset(seed int64) {
	k.rng = rand.New(rand.NewSource(seed ^ int64(hashName(k.KName))))
	k.pos = 0
	k.addr = 0
	k.buildBody()
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// buildBody synthesizes the static loop body.
func (k *Kernel) buildBody() {
	if k.BodyInsts <= 0 {
		k.BodyInsts = 32
	}
	if k.CodeBase == 0 {
		k.CodeBase = 0x40_0000
	}
	// Flatten the mix into a weighted pick list.
	type wop struct {
		op isa.Op
		w  int
	}
	var ops []wop
	total := 0
	for op, w := range k.Mix {
		if w > 0 {
			ops = append(ops, wop{op, w})
			total += w
		}
	}
	// Deterministic order regardless of map iteration.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j-1].op > ops[j].op; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
	pick := func() isa.Op {
		if total == 0 {
			return isa.OpIntALU
		}
		r := k.rng.Intn(total)
		for _, o := range ops {
			r -= o.w
			if r < 0 {
				return o.op
			}
		}
		return isa.OpIntALU
	}

	k.body = make([]isa.Inst, k.BodyInsts)
	k.memSlot = make([]bool, k.BodyInsts)
	vecIdx := 0
	for i := range k.body {
		pc := k.CodeBase + uint64(4*i)
		switch {
		case !k.NoLoopBranch && i == k.BodyInsts-1:
			// Loop back-edge: taken on every iteration but the last,
			// so well-predicted after warmup.
			k.body[i] = isa.Inst{PC: pc, Op: isa.OpBranch, Target: k.CodeBase}
		case k.BranchEvery > 0 && i%k.BranchEvery == k.BranchEvery-1:
			k.body[i] = isa.Inst{PC: pc, Op: isa.OpBranch, Target: pc + 64}
		case k.MemEvery > 0 && i%k.MemEvery == 0:
			op := isa.OpLoad
			if k.StoreFrac > 0 && k.rng.Float64() < k.StoreFrac {
				op = isa.OpStore
			} else if k.LockedFrac > 0 && k.rng.Float64() < k.LockedFrac {
				op = isa.OpLoadLocked
			}
			in := isa.Inst{PC: pc, Op: op, Size: 8, Dst: 1}
			if k.Chained && op != isa.OpStore {
				in.Dst, in.Src1 = 9, 9
			}
			k.body[i] = in
			k.memSlot[i] = true
		default:
			op := pick()
			in := isa.Inst{PC: pc, Op: op}
			switch {
			case op.IsVector():
				w := uint16(256)
				if len(k.VecWidths) > 0 {
					w = k.VecWidths[vecIdx%len(k.VecWidths)]
					vecIdx++
				}
				in.VecWidth = w
				in.Dst = isa.Reg(16 + i%8)
			case op == isa.OpMicrocoded:
				u := k.MicroUops
				if u <= 0 {
					u = 8
				}
				if u > 200 {
					u = 200
				}
				in.UopCount = uint8(u)
				in.Dst = isa.Reg(24 + i%4)
			case op.IsMemory():
				in.Size = 8
				in.Dst = isa.Reg(1 + i%4)
				k.memSlot[i] = true
			default:
				in.Dst = isa.Reg(2 + i%6)
			}
			if k.DepChain && !op.IsMemory() && op != isa.OpBranch {
				in.Dst, in.Src1 = 8, 8
			}
			k.body[i] = in
		}
	}
}

// nextAddr produces the next data address per the kernel's pattern.
func (k *Kernel) nextAddr() uint64 {
	ws := k.WorkingSet
	if ws < 4096 {
		ws = 4096
	}
	base := uint64(0x1000_0000)
	switch k.Pattern {
	case PatternStream:
		k.addr = (k.addr + 8) % ws
	case PatternStrided:
		st := k.Stride
		if st == 0 {
			st = 256
		}
		k.addr = (k.addr + st) % ws
	case PatternRandom:
		k.addr = (uint64(k.rng.Int63()) % (ws / 64)) * 64
	default:
		k.addr = 0
	}
	return base + k.addr
}

// Next implements isa.Program.
func (k *Kernel) Next() (isa.Inst, bool) {
	if k.rng == nil {
		k.Reset(1)
	}
	if k.pos >= k.TotalInsts {
		return isa.Inst{}, false
	}
	i := k.pos % len(k.body)
	in := k.body[i]
	k.pos++
	if k.memSlot[i] {
		in.Addr = k.nextAddr()
	}
	if in.Op == isa.OpBranch {
		if !k.NoLoopBranch && i == len(k.body)-1 {
			// The back-edge falls through only when the program ends.
			in.Taken = k.pos < k.TotalInsts
		} else {
			in.Taken = k.rng.Float64() < k.TakenProb
		}
	}
	return in, true
}

// Validate performs a cheap structural check of the kernel parameters.
func (k *Kernel) Validate() error {
	if k.KName == "" {
		return fmt.Errorf("workloads: kernel without a name")
	}
	if k.TotalInsts <= 0 {
		return fmt.Errorf("workloads: %s has no instructions", k.KName)
	}
	if k.TakenProb < 0 || k.TakenProb > 1 {
		return fmt.Errorf("workloads: %s taken probability %g", k.KName, k.TakenProb)
	}
	for _, w := range k.VecWidths {
		switch w {
		case 128, 256, 512:
		default:
			return fmt.Errorf("workloads: %s vector width %d", k.KName, w)
		}
	}
	return nil
}
