package workloads

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spire/internal/analysis"
	"spire/internal/core"
)

// mtVerdict is one MT golden-file row.
type mtVerdict struct {
	Name      string  `json:"name"`
	TopSource string  `json:"top_source"`
	TopKind   string  `json:"top_kind"`
	TopObject string  `json:"top_object,omitempty"`
	OffShare  float64 `json:"off_share"`
	Knot      bool    `json:"knot"`
	Threads   int     `json:"threads"`
}

// TestMTGolden is the off-CPU counterpart of TestHierarchyGolden: every
// multi-threaded kernel's injected wait bottleneck must come out
// top-ranked in the combined report, the wall-time partition must be
// exact, and the full verdict set must match the checked-in golden file
// (regenerate with -update).
func TestMTGolden(t *testing.T) {
	var got []mtVerdict
	for _, spec := range MTAll() {
		events, res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Combine(nil, events)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rep == nil {
			t.Fatalf("%s: no combined report", spec.Name)
		}

		// The partition is exact by construction: the same float64
		// additions build both sides.
		p := rep.Partition
		if p.Wall != p.OnCPU+p.OffCPU {
			t.Errorf("%s: wall %v != on %v + off %v", spec.Name, p.Wall, p.OnCPU, p.OffCPU)
		}
		if p.OffCPU != p.LockWait+p.IOWait+p.RunnableWait {
			t.Errorf("%s: off %v != lock %v + io %v + runnable %v",
				spec.Name, p.OffCPU, p.LockWait, p.IOWait, p.RunnableWait)
		}
		if p.Threads != len(res.PerThread) {
			t.Errorf("%s: partition saw %d threads, sim ran %d", spec.Name, p.Threads, len(res.PerThread))
		}

		// The injected bottleneck must be ranked first.
		top := rep.Top()
		if top == nil {
			t.Fatalf("%s: empty ranking", spec.Name)
		}
		if top.Source != "wait" || top.Wait == nil {
			t.Fatalf("%s: top bottleneck = %+v, want a wait verdict", spec.Name, top)
		}
		if top.Wait.Kind != spec.ExpectedKind {
			t.Errorf("%s: top verdict kind %q (object %q), engineered for %q",
				spec.Name, top.Wait.Kind, top.Wait.Object, spec.ExpectedKind)
		}
		if spec.ExpectedObject != "" && top.Wait.Object != spec.ExpectedObject {
			t.Errorf("%s: top verdict object %q, engineered for %q",
				spec.Name, top.Wait.Object, spec.ExpectedObject)
		}
		if spec.ExpectedKind == "knot" && !rep.Knot {
			t.Errorf("%s: knot kernel did not set the knot flag", spec.Name)
		}

		got = append(got, mtVerdict{
			Name:      spec.Name,
			TopSource: top.Source,
			TopKind:   top.Wait.Kind,
			TopObject: top.Wait.Object,
			OffShare:  p.OffShare(),
			Knot:      rep.Knot,
			Threads:   p.Threads,
		})
	}

	path := filepath.Join("testdata", "mt_golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []mtVerdict
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MT verdicts drifted from golden file (regenerate with -update)\n got: %+v\nwant: %+v", got, want)
	}
}

// TestMTPartitionMatchesSimGroundTruth cross-checks the wait-graph
// partition against the simulator's own per-thread accounting: the two
// are computed by entirely different code paths and must agree exactly
// (integer cycles represented in float64, no rounding).
func TestMTPartitionMatchesSimGroundTruth(t *testing.T) {
	for _, spec := range MTAll() {
		events, res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Combine(nil, events)
		if err != nil || rep == nil {
			t.Fatalf("%s: combine: %v", spec.Name, err)
		}
		var wantOn, wantLock, wantIO, wantRunnable, wantWall float64
		for _, pt := range res.PerThread {
			wantOn += float64(pt.OnCPU)
			wantLock += float64(pt.LockWait)
			wantIO += float64(pt.IOWait)
			wantRunnable += float64(pt.RunnableWait)
			wantWall += float64(pt.End - pt.Start)
		}
		p := rep.Partition
		if p.OnCPU != wantOn || p.LockWait != wantLock || p.IOWait != wantIO ||
			p.RunnableWait != wantRunnable || p.Wall != wantWall {
			t.Errorf("%s: partition %+v != sim ground truth on=%v lock=%v io=%v runnable=%v wall=%v",
				spec.Name, p, wantOn, wantLock, wantIO, wantRunnable, wantWall)
		}
	}
}

// TestMTRoster pins the roster's shape and determinism.
func TestMTRoster(t *testing.T) {
	specs := MTAll()
	if len(specs) != 4 {
		t.Fatalf("MT roster has %d kernels, want 4", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate MT workload name %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := MTByName(s.Name); err != nil {
			t.Fatal(err)
		}
		ev1, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		ev2, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ev1, ev2) {
			t.Fatalf("%s: two runs produced different event streams", s.Name)
		}
	}
	if _, err := MTByName("no-such-kernel"); err == nil {
		t.Fatal("MTByName accepted an unknown name")
	}
	// Build must hand out independent copies.
	a, b := specs[0].Build(), specs[0].Build()
	a[0].Ops[0].Obj = "mutated"
	if b[0].Ops[0].Obj == "mutated" {
		t.Fatal("Build shares op slices between copies")
	}
}

// TestMTSchedEventsSerializable: every event the roster emits survives
// the core JSON round trip (the ingestion contract).
func TestMTSchedEventsSerializable(t *testing.T) {
	spec, err := MTByName("lock-convoy")
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if !ev.Valid() {
			t.Fatalf("invalid event emitted: %+v", ev)
		}
	}
	raw, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var back []core.SchedEvent
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatal("sched events did not survive the JSON round trip")
	}
}
