package workloads

import (
	"fmt"

	"spire/internal/core"
	"spire/internal/perfstat"
	"spire/internal/sim"
)

// Multi-threaded roster. Where the single-thread suite engineers
// on-CPU bottlenecks (cache misses, branch storms), these kernels
// engineer *off-CPU* ones: each thread roster injects one dominant wait
// cause — a convoyed lock, a starved consumer pool, a saturated device,
// or a false-serialization knot — that the combined on/off-CPU analysis
// must rank first. The MT golden test pins exactly that.

// MTSpec is one multi-threaded workload: the scheduler-sim roster plus
// the injected bottleneck the combined ranking must name.
type MTSpec struct {
	// Name identifies the workload ("lock-convoy", ...).
	Name string
	// Config summarizes the roster for reports.
	Config string
	// ExpectedKind is the wait-verdict kind the top-ranked combined
	// bottleneck must carry ("lock", "io", "runnable", "knot").
	ExpectedKind string
	// ExpectedObject is the lock or device the top verdict must name;
	// empty for kinds without an object ("runnable", "knot").
	ExpectedObject string
	// Harts and TimeSlice configure the scheduler sim.
	Harts     int
	TimeSlice uint64
	// Threads is the roster; Build copies it.
	Threads []sim.MTThread
}

// Build returns a fresh copy of the thread roster (MTSim mutates
// per-thread progress state, so specs hand out copies).
func (s MTSpec) Build() []sim.MTThread {
	out := make([]sim.MTThread, len(s.Threads))
	for i, t := range s.Threads {
		out[i] = sim.MTThread{Ops: append([]sim.MTOp(nil), t.Ops...), Loop: t.Loop}
	}
	return out
}

// Run executes the roster to completion and returns the serialized
// scheduler events plus the simulator's ground-truth result.
func (s MTSpec) Run() ([]core.SchedEvent, sim.MTResult, error) {
	m, err := sim.NewMT(sim.MTConfig{Harts: s.Harts, TimeSlice: s.TimeSlice}, s.Build())
	if err != nil {
		return nil, sim.MTResult{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	res, err := m.Run(0)
	if err != nil {
		return nil, sim.MTResult{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	if !res.Done {
		return nil, sim.MTResult{}, fmt.Errorf("%s: roster did not run to completion", s.Name)
	}
	return perfstat.ConvertSched(res.Events, 0), res, nil
}

// mtSuite is the off-CPU roster.
var mtSuite = []MTSpec{
	{
		// Classic lock convoy: six threads do almost all their work under
		// one mutex, so at any instant five of them queue on it. The lock
		// wait dwarfs both compute and run-queue time.
		Name: "lock-convoy", Config: "6 threads, 4 harts, one hot mutex",
		ExpectedKind: "lock", ExpectedObject: "hot",
		Harts: 4,
		Threads: repeatThread(6, sim.MTThread{Ops: []sim.MTOp{
			{Kind: sim.OpLock, Obj: "hot"},
			{Kind: sim.OpCompute, Cycles: 120},
			{Kind: sim.OpUnlock, Obj: "hot"},
			{Kind: sim.OpCompute, Cycles: 15},
		}, Loop: 12}),
	},
	{
		// Producer-consumer starvation: one slow producer holds the queue
		// lock for long stretches; four consumers need it briefly but
		// spend their lives blocked behind the producer's hold time.
		Name: "producer-starved-consumers", Config: "1 producer + 4 consumers, 4 harts",
		ExpectedKind: "lock", ExpectedObject: "queue",
		Harts: 4,
		Threads: append([]sim.MTThread{{Ops: []sim.MTOp{
			{Kind: sim.OpLock, Obj: "queue"},
			{Kind: sim.OpCompute, Cycles: 400}, // produce under the lock
			{Kind: sim.OpUnlock, Obj: "queue"},
			{Kind: sim.OpCompute, Cycles: 20},
		}, Loop: 10}}, repeatThread(4, sim.MTThread{Ops: []sim.MTOp{
			{Kind: sim.OpLock, Obj: "queue"},
			{Kind: sim.OpCompute, Cycles: 25}, // consume: cheap
			{Kind: sim.OpUnlock, Obj: "queue"},
			{Kind: sim.OpCompute, Cycles: 30},
		}, Loop: 10})...),
	},
	{
		// I/O-bound pipeline: every stage does a sliver of compute then a
		// long transfer on the same serial device; the device queue is
		// where the time goes.
		Name: "io-pipeline", Config: "4 threads, 4 harts, one serial device",
		ExpectedKind: "io", ExpectedObject: "nvme0",
		Harts: 4,
		Threads: repeatThread(4, sim.MTThread{Ops: []sim.MTOp{
			{Kind: sim.OpCompute, Cycles: 40},
			{Kind: sim.OpIO, Obj: "nvme0", Cycles: 350},
		}, Loop: 8}),
	},
	{
		// False serialization: three threads pass a ring of three locks
		// with co-prime section lengths, so their phases drift until each
		// waits on the others — a knot spanning three lock objects even
		// though no single lock is globally hot.
		Name: "false-serialization-knot", Config: "3 threads, 3 harts, 3-lock ring",
		ExpectedKind: "knot",
		Harts:        3,
		Threads:      ringThreads(),
	},
}

// repeatThread clones one thread prototype n times.
func repeatThread(n int, t sim.MTThread) []sim.MTThread {
	out := make([]sim.MTThread, n)
	for i := range out {
		out[i] = sim.MTThread{Ops: append([]sim.MTOp(nil), t.Ops...), Loop: t.Loop}
	}
	return out
}

// ringThreads builds the knot roster: co-prime hold/next section
// lengths keep the three threads drifting out of phase, so every
// pairwise wait edge eventually appears. Locks are never held nested,
// so the ring cannot deadlock — it only *serializes*.
func ringThreads() []sim.MTThread {
	locks := []string{"l0", "l1", "l2"}
	hold := []uint64{97, 71, 113}
	next := []uint64{41, 67, 29}
	var threads []sim.MTThread
	for i := 0; i < 3; i++ {
		threads = append(threads, sim.MTThread{Ops: []sim.MTOp{
			{Kind: sim.OpLock, Obj: locks[i]},
			{Kind: sim.OpCompute, Cycles: hold[i]},
			{Kind: sim.OpUnlock, Obj: locks[i]},
			{Kind: sim.OpLock, Obj: locks[(i+1)%3]},
			{Kind: sim.OpCompute, Cycles: next[i]},
			{Kind: sim.OpUnlock, Obj: locks[(i+1)%3]},
		}, Loop: 20})
	}
	return threads
}

// MTAll returns the multi-threaded roster.
func MTAll() []MTSpec {
	out := make([]MTSpec, len(mtSuite))
	copy(out, mtSuite)
	return out
}

// MTByName looks a multi-threaded workload up by name.
func MTByName(name string) (MTSpec, error) {
	for _, s := range mtSuite {
		if s.Name == name {
			return s, nil
		}
	}
	return MTSpec{}, fmt.Errorf("unknown multi-threaded workload %q", name)
}
