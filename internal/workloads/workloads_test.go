package workloads

import (
	"bytes"
	"strings"
	"testing"

	"spire/internal/isa"
	"spire/internal/pmu"
)

func TestSuiteShape(t *testing.T) {
	if got := len(Training()); got != 23 {
		t.Errorf("training workloads = %d, want 23", got)
	}
	if got := len(Testing()); got != 4 {
		t.Errorf("testing workloads = %d, want 4", got)
	}
	if got := len(All()); got != 27 {
		t.Errorf("total workloads = %d, want 27", got)
	}
	names := make(map[string]bool)
	for _, s := range All() {
		if names[s.Name] {
			t.Errorf("duplicate workload name %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestTestWorkloadsCoverAllBottlenecks(t *testing.T) {
	want := map[pmu.Area]string{
		pmu.AreaFrontEnd:       "tnn",
		pmu.AreaBadSpeculation: "scikit-sparsify",
		pmu.AreaMemory:         "onnx",
		pmu.AreaCore:           "parboil-cutcp",
	}
	for area, name := range want {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !spec.Testing {
			t.Errorf("%s should be a test workload", name)
		}
		if spec.Expected != area {
			t.Errorf("%s expected area = %v, want %v", name, spec.Expected, area)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("no-such-workload"); err == nil {
		t.Error("expected error for unknown workload")
	}
	s, err := ByName("tnn")
	if err != nil || s.Name != "tnn" {
		t.Errorf("ByName(tnn) = %+v, %v", s, err)
	}
	if got := len(Names()); got != 27 {
		t.Errorf("Names() = %d entries", got)
	}
}

func TestAllKernelsValidateAndStream(t *testing.T) {
	for _, spec := range All() {
		k := spec.Kernel()
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		prog := spec.Build(0.01)
		prog.Reset(7)
		n := 0
		for {
			in, ok := prog.Next()
			if !ok {
				break
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s inst %d: %v", spec.Name, n, err)
			}
			n++
			if n > 1_000_000 {
				t.Fatalf("%s: stream did not terminate", spec.Name)
			}
		}
		if n == 0 {
			t.Errorf("%s produced no instructions", spec.Name)
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	spec, err := ByName("numenta-nab")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) []isa.Inst {
		p := spec.Build(0.01)
		p.Reset(seed)
		return isa.Collect(p, 500)
	}
	a, b := run(3), run(3)
	if len(a) != len(b) {
		t.Fatal("length mismatch for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs for same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(4)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different streams (branch outcomes/addresses)")
	}
}

func TestBuildScale(t *testing.T) {
	spec, err := ByName("fftw")
	if err != nil {
		t.Fatal(err)
	}
	count := func(scale float64) int {
		p := spec.Build(scale)
		p.Reset(1)
		n := 0
		for {
			if _, ok := p.Next(); !ok {
				return n
			}
			n++
		}
	}
	full := count(0.2)
	half := count(0.1)
	if full < 2*half-10 || full > 2*half+10 {
		t.Errorf("scaling wrong: 0.2 -> %d, 0.1 -> %d", full, half)
	}
	// Tiny scale clamps to a minimum usable length.
	if tiny := count(0.00001); tiny < 100 {
		t.Errorf("tiny scale produced %d instructions", tiny)
	}
}

func TestBuildIsolation(t *testing.T) {
	spec, err := ByName("onnx")
	if err != nil {
		t.Fatal(err)
	}
	p1 := spec.Build(0.01)
	p2 := spec.Build(0.01)
	p1.Reset(1)
	p2.Reset(1)
	// Draining p1 must not affect p2.
	for {
		if _, ok := p1.Next(); !ok {
			break
		}
	}
	if _, ok := p2.Next(); !ok {
		t.Error("programs built from the same spec share state")
	}
}

func TestKernelValidateErrors(t *testing.T) {
	bad := []Kernel{
		{KName: "", TotalInsts: 10},
		{KName: "x", TotalInsts: 0},
		{KName: "x", TotalInsts: 10, TakenProb: 1.5},
		{KName: "x", TotalInsts: 10, VecWidths: []uint16{99}},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestKernelBranchOutcomeDistribution(t *testing.T) {
	k := &Kernel{
		KName: "brtest", TotalInsts: 20000, BodyInsts: 8,
		Mix: Mix{isa.OpIntALU: 1}, BranchEvery: 2, TakenProb: 0.5,
		NoLoopBranch: true, // only the probabilistic branches here
	}
	k.Reset(11)
	taken, total := 0, 0
	for {
		in, ok := k.Next()
		if !ok {
			break
		}
		if in.Op == isa.OpBranch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	frac := float64(taken) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("taken fraction = %.2f, want ~0.5", frac)
	}
}

func TestKernelMemoryFootprint(t *testing.T) {
	k := &Kernel{
		KName: "memtest", TotalInsts: 5000, BodyInsts: 4,
		Mix: Mix{isa.OpIntALU: 1}, MemEvery: 2, WorkingSet: 1 << 16, Pattern: PatternStream,
	}
	k.Reset(1)
	lo, hi := ^uint64(0), uint64(0)
	seenMem := false
	for {
		in, ok := k.Next()
		if !ok {
			break
		}
		if in.Op.IsMemory() {
			seenMem = true
			if in.Addr < lo {
				lo = in.Addr
			}
			if in.Addr > hi {
				hi = in.Addr
			}
		}
	}
	if !seenMem {
		t.Fatal("no memory ops generated")
	}
	if span := hi - lo; span > 1<<16 {
		t.Errorf("addresses span %d bytes, want <= working set", span)
	}
}

func TestKernelJSONRoundTrip(t *testing.T) {
	spec, err := ByName("onnx")
	if err != nil {
		t.Fatal(err)
	}
	orig := spec.Kernel()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Human-readable op names and pattern names in the JSON.
	js := buf.String()
	for _, want := range []string{`"vec_fma"`, `"stream"`} {
		if !strings.Contains(js, want) {
			t.Errorf("kernel JSON missing %s:\n%s", want, js)
		}
	}
	got, err := ReadKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.KName != orig.KName || got.TotalInsts != orig.TotalInsts ||
		got.WorkingSet != orig.WorkingSet || got.Pattern != orig.Pattern {
		t.Errorf("scalar fields lost: %+v", got)
	}
	if len(got.Mix) != len(orig.Mix) {
		t.Fatalf("mix lost: %v vs %v", got.Mix, orig.Mix)
	}
	for op, w := range orig.Mix {
		if got.Mix[op] != w {
			t.Errorf("mix[%v] = %d, want %d", op, got.Mix[op], w)
		}
	}
	// The round-tripped kernel must generate the same stream.
	a, b := orig, *got
	a.Reset(5)
	b.Reset(5)
	for i := 0; i < 2000; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb || ia != ib {
			t.Fatalf("stream diverged at %d", i)
		}
		if !oka {
			break
		}
	}
}

func TestReadKernelRejectsBad(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello",
		"unknown op":      `{"KName":"x","TotalInsts":10,"Mix":{"warp_shuffle":1}}`,
		"unknown pattern": `{"KName":"x","TotalInsts":10,"Pattern":"zigzag"}`,
		"unknown field":   `{"KName":"x","TotalInsts":10,"Bogus":1}`,
		"invalid kernel":  `{"KName":"","TotalInsts":10}`,
		"bad prob":        `{"KName":"x","TotalInsts":10,"TakenProb":2}`,
	}
	for name, payload := range cases {
		if _, err := ReadKernel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseOp(t *testing.T) {
	op, ok := isa.ParseOp("fp_div")
	if !ok || op != isa.OpFPDiv {
		t.Errorf("ParseOp(fp_div) = %v, %v", op, ok)
	}
	if _, ok := isa.ParseOp("bogus"); ok {
		t.Error("unknown mnemonic should not resolve")
	}
}

func TestPatternString(t *testing.T) {
	if PatternStream.String() != "stream" || Pattern(99).String() != "pattern(99)" {
		t.Error("pattern names wrong")
	}
}
