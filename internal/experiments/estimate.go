package experiments

import (
	"context"

	"spire/internal/core"
	"spire/internal/engine"
)

// estimate runs one Eq. 1 evaluation on the process-wide shared engine —
// the single estimation path every experiment (cross-validation, tables,
// ablations, microbenchmarks) goes through. The shared index cache pays
// off here: ablations re-estimate the same workload datasets against many
// model variants, and the engine rebuilds each index only once.
func estimate(ens *core.Ensemble, d core.Dataset) (*core.Estimation, error) {
	return engine.Default().Estimate(context.Background(), ens, d, core.EstimateOptions{})
}
