package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"spire/internal/core"
	"spire/internal/geom"
	"spire/internal/pmu"
	"spire/internal/workloads"
)

var (
	sessOnce sync.Once
	sess     *Session
)

// quickSession shares one reduced-scale pipeline across the integration
// tests; building it runs all 27 workloads and trains the ensemble.
func quickSession(t *testing.T) *Session {
	t.Helper()
	if testing.Short() {
		t.Skip("full pipeline skipped in -short mode")
	}
	sessOnce.Do(func() {
		sess = NewSession(QuickConfig())
	})
	return sess
}

func TestRunWorkloadProducesSamplesAndTMA(t *testing.T) {
	spec, err := workloads.ByName("fftw")
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	cfg.Scale = 0.05
	run, err := RunWorkload(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Data.Len() == 0 {
		t.Error("no samples collected")
	}
	if run.Report.IPC <= 0 {
		t.Errorf("IPC = %g", run.Report.IPC)
	}
	sum := run.TMA.Retiring + run.TMA.FrontEnd + run.TMA.BadSpeculation + run.TMA.BackEnd
	if sum <= 0 || sum > 1.0+1e-9 {
		t.Errorf("TMA sum = %g", sum)
	}
}

// TestSessionTrainParallelByteIdentical pins the headline determinism
// guarantee on real pipeline data: training on every sample from the full
// 27-workload session must produce a byte-identical model for any worker
// count, and the session must expose a complete training report.
func TestSessionTrainParallelByteIdentical(t *testing.T) {
	s := quickSession(t)
	data, err := s.TrainingDataset()
	if err != nil {
		t.Fatal(err)
	}
	testRuns, err := s.TestRuns()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRuns {
		data.Merge(r.Data)
	}

	opts := core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles", Workers: 1}
	serial, srep, err := core.TrainContext(context.Background(), data, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serial.Save(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8, 32} {
		opts.Workers = workers
		ens, rep, err := core.TrainContext(context.Background(), data, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got bytes.Buffer
		if err := ens.Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: model differs from serial fit on full-session data", workers)
		}
		if rep.Fitted != srep.Fitted || rep.Metrics != srep.Metrics {
			t.Fatalf("workers=%d: report %+v differs from serial %+v", workers, rep, srep)
		}
	}

	rep, err := s.TrainReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Fitted == 0 || rep.Fitted != rep.Metrics-len(rep.Skipped) {
		t.Errorf("session train report = %+v", rep)
	}
}

func TestTable1Classifications(t *testing.T) {
	s := quickSession(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	mismatches := 0
	for _, r := range rows {
		if r.Expected == pmu.AreaRetiring {
			// The deliberately high-IPC workload has no meaningful
			// bottleneck label; skip it like the calibration does.
			continue
		}
		if r.Main != r.Expected {
			mismatches++
			t.Logf("%s: main %v != expected %v (%s)", r.Name, r.Main, r.Expected, r.TMA)
		}
	}
	// The paper's premise is that the suite spans bottleneck families;
	// allow a couple of borderline flips at reduced scale.
	if mismatches > 3 {
		t.Errorf("%d workloads mis-classified", mismatches)
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestTable2AgreementShape(t *testing.T) {
	s := quickSession(t)
	cols, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 {
		t.Fatalf("columns = %d, want 4", len(cols))
	}
	byName := make(map[string]Table2Col)
	for _, c := range cols {
		byName[c.Workload] = c
		if len(c.Top) == 0 {
			t.Fatalf("%s: empty top metrics", c.Workload)
		}
		// Ranking is ascending in estimate.
		for i := 1; i < len(c.Top); i++ {
			if c.Top[i].Estimate < c.Top[i-1].Estimate-1e-12 {
				t.Errorf("%s: ranking not ascending at %d", c.Workload, i)
			}
		}
	}
	// The paper's headline shape: each test workload's SPIRE analysis
	// points at the same bottleneck family TMA reports.
	expect := map[string]pmu.Area{
		"tnn":             pmu.AreaFrontEnd,
		"scikit-sparsify": pmu.AreaBadSpeculation,
		"onnx":            pmu.AreaMemory,
		"parboil-cutcp":   pmu.AreaCore,
	}
	for name, area := range expect {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("missing column for %s", name)
		}
		if c.TMAMain != area {
			t.Errorf("%s: TMA main = %v, want %v", name, c.TMAMain, area)
		}
		// SPIRE's verdict: the expected area must be strongly present in
		// the top pool (dominant, or the top-1 metric's area, or at
		// least 30% of the pool) — scikit legitimately mixes Core and
		// BadSpec, as the paper itself reports.
		count := 0
		for _, e := range c.Top {
			if e.Area == area {
				count++
			}
		}
		frac := float64(count) / float64(len(c.Top))
		if c.DominantArea != area && c.Top[0].Area != area && frac < 0.3 {
			t.Errorf("%s: SPIRE top pool does not surface %v (dominant %v, top1 %v, frac %.2f)",
				name, area, c.DominantArea, c.Top[0].Area, frac)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, cols); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestSpireEstimateTracksMeasuredIPC(t *testing.T) {
	s := quickSession(t)
	accs, err := s.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if a.Measured <= 0 {
			t.Errorf("%s: measured %g", a.Workload, a.Measured)
			continue
		}
		// SPIRE estimates attainable throughput; it should be in the
		// right ballpark of measured IPC (the paper's models track
		// measured performance closely on the test set).
		if a.Ratio < 0.3 || a.Ratio > 4 {
			t.Errorf("%s: estimate/measured = %.2f (est %.2f, meas %.2f)",
				a.Workload, a.Ratio, a.Estimated, a.Measured)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DB.2", "idq.dsb_uops", "BP.1", "Front-End", "Memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	s := quickSession(t)
	fig, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Roof.X) == 0 || len(fig.DRAM.X) == 0 || len(fig.Scalar.X) == 0 {
		t.Fatal("empty series")
	}
	// The two apps must land on opposite sides of the ridge, like the
	// paper's App A and App B.
	if got := fig.Bounds["onnx"]; got.String() != "memory-bound" {
		t.Errorf("onnx classified %v, want memory-bound", got)
	}
	if got := fig.Bounds["arrayfire-blas"]; got.String() != "compute-bound" {
		t.Errorf("arrayfire-blas classified %v, want compute-bound", got)
	}
	// Ceilings sit at or below the roof everywhere.
	for i := range fig.Roof.X {
		if fig.DRAM.Y[i] > fig.Roof.Y[i]+1e-9 {
			t.Fatalf("DRAM ceiling above roof at %g", fig.Roof.X[i])
		}
	}
}

func TestFig5LeftFitDemo(t *testing.T) {
	d, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Roofline.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The left chain must end at the peak (8, 2.5) and skip dominated
	// samples like (3, 1.0).
	peak := d.Roofline.Peak()
	if peak.X != 8 || peak.Y != 2.5 {
		t.Errorf("peak = %v", peak)
	}
	for _, p := range d.Roofline.Left {
		if p == (geom.Point{X: 3, Y: 1.0}) {
			t.Error("dominated sample should not be a hull vertex")
		}
	}
	// Fit lies on or above every sample.
	for _, p := range d.Samples {
		if d.Roofline.Eval(p.X) < p.Y-1e-9 {
			t.Errorf("fit undercuts %v", p)
		}
	}
}

func TestFig6RightFitDemo(t *testing.T) {
	d, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Roofline.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The bulge at C forces the optimal fit to skip D = (5, 4).
	for _, p := range d.Roofline.Right {
		if p == (geom.Point{X: 5, Y: 4}) {
			t.Error("D should be skipped by the optimal fit")
		}
	}
	touchesC := false
	for _, p := range d.Roofline.Right {
		if p == (geom.Point{X: 4, Y: 12}) {
			touchesC = true
		}
	}
	if !touchesC {
		t.Error("fit should touch the bulge sample C = (4, 12)")
	}
	if d.Roofline.Eval(5) < 4 {
		t.Error("fit must stay above the skipped sample")
	}
	if d.TotalSquaredError <= 0 {
		t.Error("skipping D must cost a positive squared error")
	}
}

func TestFig7LearnedRooflines(t *testing.T) {
	s := quickSession(t)
	figs, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figures = %d, want 2 (BP.1 and DB.2)", len(figs))
	}
	for _, f := range figs {
		if err := f.Roofline.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", f.Abbr, err)
		}
		if len(f.Samples.X) == 0 || len(f.Curve.X) == 0 {
			t.Errorf("%s: empty series", f.Abbr)
		}
		// The fit must bound its own training samples.
		for i := range f.Samples.X {
			if f.Roofline.Eval(f.Samples.X[i]) < f.Samples.Y[i]-1e-6 {
				t.Errorf("%s: fit undercuts sample %d", f.Abbr, i)
				break
			}
		}
	}
	// BP.1's roofline should be increasing over the bulk of its range
	// (mispredicts hurt: more instructions per mispredict -> higher IPC
	// bound), the paper's left-fit exemplar.
	bp := figs[0]
	lowI := bp.Roofline.Eval(bp.Roofline.Peak().X / 100)
	peakI := bp.Roofline.Peak().Y
	if lowI >= peakI {
		t.Errorf("BP.1 bound not increasing: eval(low)=%g peak=%g", lowI, peakI)
	}
}

func TestOverheadExperiment(t *testing.T) {
	s := quickSession(t)
	oh, err := s.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(oh.PerWorkload) != 27 {
		t.Fatalf("per-workload overheads = %d", len(oh.PerWorkload))
	}
	// Shape check against the paper's 1.6% avg / 4.6% max: small but
	// nonzero, and max >= mean.
	if oh.Mean <= 0 || oh.Mean > 0.2 {
		t.Errorf("mean overhead = %.3f, want small positive", oh.Mean)
	}
	if oh.Max < oh.Mean {
		t.Errorf("max %.3f < mean %.3f", oh.Max, oh.Mean)
	}
}

func TestAblationTWA(t *testing.T) {
	s := quickSession(t)
	res, err := s.AblationTWA()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		// The rankings should be similar (TWA is a refinement, not a
		// different algorithm) but defined.
		if !math.IsNaN(r.SpearmanRho) && (r.SpearmanRho < -1 || r.SpearmanRho > 1) {
			t.Errorf("%s: rho = %g", r.Workload, r.SpearmanRho)
		}
	}
}

func TestAblationEnsembleReduction(t *testing.T) {
	s := quickSession(t)
	res, err := s.AblationEnsembleReduction()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.MeanEst < r.MinEst {
			t.Errorf("%s: mean reduction %g below min %g", r.Workload, r.MeanEst, r.MinEst)
		}
		// The mean-reduction ablation motivates the paper's min: the
		// mean wildly overestimates attainable throughput.
		if r.MeanRatio < r.MinRatio {
			t.Errorf("%s: mean ratio %g < min ratio %g", r.Workload, r.MeanRatio, r.MinRatio)
		}
	}
}

func TestAblationTrainingSize(t *testing.T) {
	s := quickSession(t)
	pts, err := s.AblationTrainingSize([]int{4, 12, 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Training on the full set must agree with itself.
	last := pts[len(pts)-1]
	if last.Workloads != 23 || last.MeanOverlapTop10 < 0.99 {
		t.Errorf("full training self-overlap = %.2f, want 1.0", last.MeanOverlapTop10)
	}
	if _, err := s.AblationTrainingSize([]int{0}); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := s.AblationTrainingSize([]int{99}); err == nil {
		t.Error("size beyond suite should fail")
	}
}

func TestGreedyRightFitNeverBeatsDijkstra(t *testing.T) {
	// On any front, the shortest-path fit's error over the front must be
	// <= the greedy fit's (it optimizes exactly that objective).
	fronts := [][]geom.Point{
		{{X: 1, Y: 20}, {X: 3, Y: 16}, {X: 4, Y: 12}, {X: 5, Y: 4}, {X: 7, Y: 1}},
		{{X: 1, Y: 8}, {X: 2, Y: 7.9}, {X: 3, Y: 4}, {X: 4, Y: 1}},
		{{X: 1, Y: 10}, {X: 2, Y: 5}, {X: 4, Y: 2.5}, {X: 8, Y: 1.25}},
	}
	for i, front := range fronts {
		demo, err := newFitDemo("greedy-vs-dijkstra", front)
		if err != nil {
			t.Fatal(err)
		}
		dij := RightFitError(demo.Roofline, front)
		greedy := GreedyRightFit(front)
		if dij > greedy+1e-9 {
			t.Errorf("front %d: dijkstra error %g exceeds greedy %g", i, dij, greedy)
		}
	}
}

func TestWorkloadSuiteNames(t *testing.T) {
	if len(WorkloadSuiteNames()) != 27 {
		t.Error("suite names should list 27 workloads")
	}
}

func TestAblationMicrobenchTraining(t *testing.T) {
	s := quickSession(t)
	res, err := s.AblationMicrobenchTraining()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	var meanOverlap float64
	for _, r := range res {
		if r.WorkloadTrainedTop1 == "" || r.MicrobenchTrainedTop1 == "" {
			t.Errorf("%s: empty top metrics (%q / %q)", r.Workload, r.WorkloadTrainedTop1, r.MicrobenchTrainedTop1)
		}
		if r.EstimateRatio <= 0 {
			t.Errorf("%s: estimate ratio %g", r.Workload, r.EstimateRatio)
		}
		meanOverlap += r.OverlapTop10
	}
	meanOverlap /= float64(len(res))
	// The two training regimes should broadly agree on average; exact
	// per-workload agreement is not expected — isolated microbenchmarks
	// interpolate combined behaviours differently than applications,
	// which is the very reason the paper trains on applications.
	if meanOverlap < 0.4 {
		t.Errorf("mean top-10 overlap %.2f between training regimes, want >= 0.4", meanOverlap)
	}
}

func TestMicrobenchEnsembleCoversRegistry(t *testing.T) {
	s := quickSession(t)
	ens, err := s.MicrobenchEnsemble()
	if err != nil {
		t.Fatal(err)
	}
	// The targeted suite must train a roofline for the large majority of
	// metric events (some exotic ones may see no variation).
	if got := len(ens.Rooflines); got < 40 {
		t.Errorf("microbench model covers %d metrics, want >= 40", got)
	}
}

func TestAblationPrefetcher(t *testing.T) {
	s := quickSession(t)
	res, err := s.AblationPrefetcher()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PrefetchAblation{}
	for _, r := range res {
		byName[r.Workload] = r
		if r.BaseIPC <= 0 {
			t.Errorf("%s: base IPC %g", r.Workload, r.BaseIPC)
		}
	}
	// Streaming DRAM-bound workloads benefit; the dependent pointer
	// chase cannot (no stride to detect).
	if r := byName["remhos"]; r.Speedup < 1.1 {
		t.Errorf("remhos (streaming) speedup %.2f, want >= 1.1", r.Speedup)
	}
	if r := byName["faiss-sift1m"]; r.Speedup > 1.1 || r.Speedup < 0.9 {
		t.Errorf("faiss-sift1m (pointer chase) speedup %.2f, want ~1.0", r.Speedup)
	}
	// The L1-resident compute kernel is unaffected.
	if r := byName["qmcpack"]; r.Speedup > 1.05 || r.Speedup < 0.95 {
		t.Errorf("qmcpack (compute) speedup %.2f, want ~1.0", r.Speedup)
	}
}

func TestCrossValidate(t *testing.T) {
	s := quickSession(t)
	cv, err := s.CrossValidate(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Points) != 23 {
		t.Fatalf("folds = %d, want 23", len(cv.Points))
	}
	// SPIRE's bound is statistical, not sound (the paper's own caveat):
	// held-out workloads that are the suite's sole example of a
	// behaviour (the peak-IPC anchor, the strided+microcoded kernel)
	// legitimately exceed a bound trained without them. Assert the
	// statistics stay sane rather than demanding soundness.
	if cv.ViolationRate > 0.6 {
		t.Errorf("violation rate %.2f, want <= 0.6", cv.ViolationRate)
		for _, p := range cv.Points {
			if p.Ratio < 0.9 {
				t.Logf("violated: %s measured %.3f vs bound %.3f", p.Workload, p.Measured, p.Estimate)
			}
		}
	}
	if cv.WorstRatio <= 0 {
		t.Errorf("worst ratio %g", cv.WorstRatio)
	}
	if cv.MedianRatio < 0.8 {
		t.Errorf("median ratio %.2f, want near or above 1", cv.MedianRatio)
	}
	if _, err := s.CrossValidate(-1); err != nil {
		t.Errorf("negative tolerance should clamp, got %v", err)
	}
}

func TestAblationInterval(t *testing.T) {
	s := quickSession(t)
	base := s.Cfg.IntervalCycles
	pts, err := s.AblationInterval([]uint64{base / 2, base, base * 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// The same interval as the session default must reproduce the same
	// ranking (identical collection), and nearby intervals should stay
	// broadly consistent.
	if pts[1].MeanOverlapTop10 < 0.99 {
		t.Errorf("same-interval overlap = %.2f, want 1.0", pts[1].MeanOverlapTop10)
	}
	for _, p := range pts {
		if p.MeanOverlapTop10 < 0.5 {
			t.Errorf("interval %d: overlap %.2f, want >= 0.5", p.IntervalCycles, p.MeanOverlapTop10)
		}
	}
	if _, err := s.AblationInterval([]uint64{0}); err == nil {
		t.Error("zero interval should error")
	}
}

func TestAblationSeeds(t *testing.T) {
	s := quickSession(t)
	res, err := s.AblationSeeds([]int64{42, 43, 44})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Pairs != 3 {
			t.Errorf("%s: pairs = %d, want 3", r.Workload, r.Pairs)
		}
		// Bottleneck rankings should be seed-robust: the pool reflects
		// the workload's structure, not its random stream.
		if r.MeanOverlapTop10 < 0.6 {
			t.Errorf("%s: seed stability %.2f, want >= 0.6", r.Workload, r.MeanOverlapTop10)
		}
	}
	if _, err := s.AblationSeeds([]int64{1}); err == nil {
		t.Error("single seed should fail")
	}
}
