package experiments

import (
	"math"
	"sort"

	"spire/internal/core"
)

// CrossValPoint is one fold of the leave-one-out cross-validation: the
// held-out workload's measured throughput against the bound predicted by
// a model trained on the other 22 workloads.
type CrossValPoint struct {
	Workload string
	Measured float64
	Estimate float64
	// Ratio is Estimate/Measured. SPIRE predicts an upper bound, so
	// ratios >= 1 mean the bound held; ratios < 1 are violations
	// (the held-out workload exceeded what the model thought possible —
	// evidence of training under-coverage).
	Ratio float64
}

// CrossValSummary aggregates the folds.
type CrossValSummary struct {
	Points []CrossValPoint
	// ViolationRate is the fraction of folds with Ratio < 1 - Tolerance.
	ViolationRate float64
	// MedianRatio and WorstRatio summarize bound tightness.
	MedianRatio float64
	WorstRatio  float64
	// Tolerance used for the violation count.
	Tolerance float64
}

// CrossValidate runs leave-one-out cross-validation over the training
// suite: each workload is held out, the model is retrained on the rest,
// and the held-out workload's measured IPC is compared with its predicted
// bound. This quantifies how well SPIRE generalizes to unseen workloads —
// the property the paper's 23-train/4-test split spot-checks.
func (s *Session) CrossValidate(tolerance float64) (*CrossValSummary, error) {
	if tolerance < 0 {
		tolerance = 0
	}
	runs, err := s.TrainingRuns()
	if err != nil {
		return nil, err
	}
	sum := &CrossValSummary{Tolerance: tolerance}
	violations := 0
	var ratios []float64
	for hold := range runs {
		var data core.Dataset
		for i, r := range runs {
			if i != hold {
				data.Merge(r.Data)
			}
		}
		ens, err := core.Train(data, core.TrainOptions{})
		if err != nil {
			return nil, err
		}
		est, err := estimate(ens, runs[hold].Data)
		if err != nil {
			// The held-out workload shares no metrics with the rest —
			// cannot happen with a common PMU, but skip defensively.
			continue
		}
		p := CrossValPoint{
			Workload: runs[hold].Spec.Name,
			Measured: runs[hold].Report.IPC,
			Estimate: est.MaxThroughput,
		}
		if p.Measured > 0 {
			p.Ratio = p.Estimate / p.Measured
		} else {
			p.Ratio = math.NaN()
		}
		sum.Points = append(sum.Points, p)
		if !math.IsNaN(p.Ratio) {
			ratios = append(ratios, p.Ratio)
			if p.Ratio < 1-tolerance {
				violations++
			}
		}
	}
	if len(ratios) == 0 {
		return nil, core.ErrNoSamples
	}
	sum.ViolationRate = float64(violations) / float64(len(ratios))
	sort.Float64s(ratios)
	sum.MedianRatio = ratios[len(ratios)/2]
	sum.WorstRatio = ratios[0]
	return sum, nil
}
