package experiments

import (
	"fmt"
	"sync"

	"spire/internal/core"
	"spire/internal/microbench"
	"spire/internal/perfstat"
	"spire/internal/sim"
)

// MicrobenchInsts is the dynamic instruction budget per microbenchmark
// point at Scale = 1.
const MicrobenchInsts = 120_000

// MicrobenchEnsemble trains a SPIRE model from the targeted
// microbenchmark suite instead of the application workloads — the paper's
// "ideal" training regime (§III-A: "optimized workloads specifically
// designed to exercise each metric").
func (s *Session) MicrobenchEnsemble() (*core.Ensemble, error) {
	progs := microbench.Programs(int(float64(MicrobenchInsts) * s.Cfg.Scale))
	datasets := make([]core.Dataset, len(progs))
	errs := make([]error, len(progs))
	sem := make(chan struct{}, s.Cfg.Parallel)
	var wg sync.WaitGroup
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prog := progs[i]
			sm, err := sim.New(s.Cfg.core(), prog, s.Cfg.Seed+int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			d, _, err := perfstat.Collect(sm, prog.Name(), perfstat.Options{
				IntervalCycles: s.Cfg.IntervalCycles,
				MaxCycles:      s.Cfg.MaxCyclesPerWorkload,
				GroupSize:      s.Cfg.GroupSize,
				Multiplex:      true,
				PerturbLines:   s.Cfg.PerturbLines,
			})
			if err != nil {
				errs[i] = fmt.Errorf("experiments: microbench %s: %w", prog.Name(), err)
				return
			}
			datasets[i] = d
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var data core.Dataset
	for _, d := range datasets {
		data.Merge(d)
	}
	return core.Train(data, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
}

// MicrobenchComparison is the microbenchmark-vs-application training
// ablation for one test workload.
type MicrobenchComparison struct {
	Workload string
	// WorkloadTrainedTop1 and MicrobenchTrainedTop1 are the top-ranked
	// metric under each model.
	WorkloadTrainedTop1   string
	MicrobenchTrainedTop1 string
	// OverlapTop10 is the top-10 pool overlap between the two rankings.
	OverlapTop10 float64
	// EstimateRatio is (microbench-trained estimate) / (workload-trained
	// estimate): how much the two regimes disagree on attainable
	// throughput.
	EstimateRatio float64
}

// AblationMicrobenchTraining compares the paper's two training regimes:
// opportunistic application sampling (the evaluation's choice) versus
// purpose-built microbenchmarks (the stated ideal).
func (s *Session) AblationMicrobenchTraining() ([]MicrobenchComparison, error) {
	appModel, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	ubModel, err := s.MicrobenchEnsemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var out []MicrobenchComparison
	for _, r := range runs {
		appEst, err := estimate(appModel, r.Data)
		if err != nil {
			return nil, err
		}
		ubEst, err := estimate(ubModel, r.Data)
		if err != nil {
			return nil, err
		}
		c := MicrobenchComparison{Workload: r.Spec.Name}
		if len(appEst.PerMetric) > 0 {
			c.WorkloadTrainedTop1 = appEst.PerMetric[0].Metric
		}
		if len(ubEst.PerMetric) > 0 {
			c.MicrobenchTrainedTop1 = ubEst.PerMetric[0].Metric
		}
		metrics := sharedMetrics(appEst, ubEst)
		if len(metrics) >= 2 {
			k := 10
			if k > len(metrics) {
				k = len(metrics)
			}
			ov, err := overlapOrNaN(rankingVector(appEst, metrics), rankingVector(ubEst, metrics), k)
			if err == nil {
				c.OverlapTop10 = ov
			}
		}
		if appEst.MaxThroughput > 0 {
			c.EstimateRatio = ubEst.MaxThroughput / appEst.MaxThroughput
		}
		out = append(out, c)
	}
	return out, nil
}
