package experiments

import (
	"fmt"
	"math"

	"spire/internal/core"
	"spire/internal/geom"
	"spire/internal/pmu"
	"spire/internal/report"
	"spire/internal/roofline"
	"spire/internal/uarch"
)

// Fig2Result is the classic-roofline figure: the model's roof, the extra
// ceilings, and two measured applications (one memory-bound, one
// compute-bound), mirroring the paper's Fig. 2.
type Fig2Result struct {
	Model  *roofline.Model
	Roof   report.Series
	DRAM   report.Series
	Scalar report.Series
	Apps   []roofline.App
	Bounds map[string]roofline.Bound
}

// Fig2 builds the classic instruction-roofline for the simulated core and
// places the onnx (memory-bound) and arrayfire-blas (compute-bound) test
// points on it. Operational intensity is instructions per byte of DRAM
// traffic.
func (s *Session) Fig2() (*Fig2Result, error) {
	cfg := uarch.Default()
	peakIPC := float64(cfg.IssueWidth)
	// The top bandwidth roof is the L3-to-core transfer rate; DRAM is the
	// lower diagonal ceiling as in the paper's figure.
	l3Bytes := 2 * cfg.Mem.DRAM.BytesPerCycle
	model, err := roofline.New(peakIPC, l3Bytes,
		roofline.Ceiling{Name: "DRAM", Kind: roofline.Bandwidth, Value: cfg.Mem.DRAM.BytesPerCycle},
		roofline.Ceiling{Name: "scalar", Kind: roofline.Compute, Value: 1},
	)
	if err != nil {
		return nil, err
	}

	appOf := func(name string) (roofline.App, error) {
		run, err := s.findRun(name)
		if err != nil {
			return roofline.App{}, err
		}
		bytes := float64(run.Counts.Read(pmu.EvL3Miss)) * 64
		inst := float64(run.Counts.Read(pmu.EvInstRetired))
		i := math.Inf(1)
		if bytes > 0 {
			i = inst / bytes
		}
		// Cap cache-resident apps at a large finite intensity so the
		// point stays plottable, as roofline practitioners do.
		if i > 1e4 {
			i = 1e4
		}
		return roofline.App{Name: name, Intensity: i, Throughput: run.Report.IPC}, nil
	}
	appA, err := appOf("onnx")
	if err != nil {
		return nil, err
	}
	appB, err := appOf("arrayfire-blas")
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{
		Model:  model,
		Apps:   []roofline.App{appA, appB},
		Bounds: map[string]roofline.Bound{},
	}
	for _, a := range res.Apps {
		res.Bounds[a.Name] = model.Classify(a.Intensity)
	}
	lo, hi := 1e-2, 1e4
	pts, err := model.Series(lo, hi, 64)
	if err != nil {
		return nil, err
	}
	res.Roof = seriesFrom("roof", pts)
	var dram, scalar []roofline.SeriesPoint
	ratio := math.Pow(hi/lo, 1.0/63)
	for x := lo; x <= hi*1.0001; x *= ratio {
		pd, err := model.AttainableUnder("DRAM", x)
		if err != nil {
			return nil, err
		}
		ps, err := model.AttainableUnder("scalar", x)
		if err != nil {
			return nil, err
		}
		dram = append(dram, roofline.SeriesPoint{I: x, P: pd})
		scalar = append(scalar, roofline.SeriesPoint{I: x, P: ps})
	}
	res.DRAM = seriesFrom("dram-ceiling", dram)
	res.Scalar = seriesFrom("scalar-ceiling", scalar)
	return res, nil
}

func seriesFrom(name string, pts []roofline.SeriesPoint) report.Series {
	s := report.Series{Name: name, XLabel: "operational intensity", YLabel: "throughput"}
	for _, p := range pts {
		s.X = append(s.X, p.I)
		s.Y = append(s.Y, p.P)
	}
	return s
}

func (s *Session) findRun(name string) (WorkloadRun, error) {
	train, err := s.TrainingRuns()
	if err != nil {
		return WorkloadRun{}, err
	}
	test, err := s.TestRuns()
	if err != nil {
		return WorkloadRun{}, err
	}
	for _, r := range append(append([]WorkloadRun{}, train...), test...) {
		if r.Spec.Name == name {
			return r, nil
		}
	}
	return WorkloadRun{}, fmt.Errorf("experiments: no run named %q", name)
}

// FitDemo is a worked fitting example (the paper's Figs. 5 and 6): the
// input samples, the fitted roofline, and the curve evaluated on a grid.
type FitDemo struct {
	Samples  []geom.Point
	Roofline *core.Roofline
	Curve    report.Series
	Points   report.Series
	// TotalSquaredError is the sum of squared overestimation over the
	// samples (the quantity the right-fit shortest path minimizes).
	TotalSquaredError float64
}

func newFitDemo(metric string, pts []geom.Point) (*FitDemo, error) {
	var samples []core.Sample
	for _, p := range pts {
		s := core.Sample{Metric: metric, T: 1, W: p.Y}
		if math.IsInf(p.X, 1) {
			s.M = 0
		} else if p.X == 0 {
			s.W, s.M = 0, 1
		} else {
			s.M = p.Y / p.X
		}
		samples = append(samples, s)
	}
	r, err := core.FitRoofline(metric, samples)
	if err != nil {
		return nil, err
	}
	d := &FitDemo{Samples: pts, Roofline: r}
	// Evaluate on a dense grid covering the samples.
	maxX := 0.0
	for _, p := range pts {
		if !math.IsInf(p.X, 1) && p.X > maxX {
			maxX = p.X
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	curve := report.Series{Name: metric + "-fit", XLabel: "I", YLabel: "P"}
	for i := 0; i <= 200; i++ {
		x := maxX * 1.2 * float64(i) / 200
		curve.X = append(curve.X, x)
		curve.Y = append(curve.Y, r.Eval(x))
	}
	d.Curve = curve
	sc := report.Series{Name: metric + "-samples", XLabel: "I", YLabel: "P"}
	for _, p := range pts {
		if math.IsInf(p.X, 1) {
			continue
		}
		sc.X = append(sc.X, p.X)
		sc.Y = append(sc.Y, p.Y)
	}
	d.Points = sc
	for _, p := range pts {
		e := r.Eval(p.X) - p.Y
		if e > 0 {
			d.TotalSquaredError += e * e
		}
	}
	return d, nil
}

// Fig5 reproduces the left-region fitting walkthrough: samples below and
// left of the peak, fitted with the convex-hull algorithm.
func Fig5() (*FitDemo, error) {
	return newFitDemo("fig5.left", []geom.Point{
		{X: 1, Y: 1}, {X: 2, Y: 1.6}, {X: 3, Y: 1.0},
		{X: 4, Y: 2.2}, {X: 6, Y: 2.0}, {X: 8, Y: 2.5},
	})
}

// Fig6 reproduces the right-region fitting walkthrough: Pareto samples
// A-E beyond the peak, fitted with the shortest-path algorithm. The
// sample set is constructed so that the concave-up rule makes sample D
// unreachable by any zero-error chain (the bulge at C forbids it): the
// optimal fit must pay a weighted overestimating segment that skips D,
// exercising the same weighted-edge machinery the paper illustrates with
// its "squared error 11" example.
func Fig6() (*FitDemo, error) {
	return newFitDemo("fig6.right", []geom.Point{
		{X: 1, Y: 20}, // E: the peak
		{X: 3, Y: 16}, // B
		{X: 4, Y: 12}, // C: the bulge
		{X: 5, Y: 4},  // D: skipped by the best fit
		{X: 7, Y: 1},  // A: the rightmost Pareto sample
		{X: 2, Y: 10}, // interior, dominated
	})
}

// Fig7Result holds one learned-roofline plot: the trained model for a
// metric plus its training samples (paper Fig. 7).
type Fig7Result struct {
	Metric   string
	Abbr     string
	Roofline *core.Roofline
	Curve    report.Series
	Samples  report.Series
}

// Fig7Metrics are the two events the paper plots: BP.1 (retired
// mispredicted branches, a left-fit exemplar) and DB.2 (DSB uops, a
// right-fit exemplar).
var Fig7Metrics = []string{
	"br_misp_retired.all_branches",
	"idq.dsb_uops",
}

// Fig7 extracts the learned rooflines for the paper's two showcase
// metrics from the trained ensemble.
func (s *Session) Fig7() ([]Fig7Result, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	data, err := s.TrainingDataset()
	if err != nil {
		return nil, err
	}
	groups := data.ByMetric()
	var out []Fig7Result
	for _, metric := range Fig7Metrics {
		r, ok := ens.Rooflines[metric]
		if !ok {
			return nil, fmt.Errorf("experiments: ensemble has no roofline for %s", metric)
		}
		ev, _ := pmu.Lookup(metric)
		res := Fig7Result{Metric: metric, Abbr: ev.Abbr, Roofline: r}

		samples := groups[metric]
		sc := report.Series{Name: ev.Abbr + "-samples", XLabel: "I", YLabel: "IPC"}
		maxX := 0.0
		for _, smp := range samples {
			p := smp.Point()
			if math.IsInf(p.X, 1) || math.IsNaN(p.X) {
				continue
			}
			sc.X = append(sc.X, p.X)
			sc.Y = append(sc.Y, p.Y)
			if p.X > maxX {
				maxX = p.X
			}
		}
		res.Samples = sc
		if maxX == 0 {
			maxX = 1
		}
		curve := report.Series{Name: ev.Abbr + "-fit", XLabel: "I", YLabel: "IPC"}
		// Log-spaced grid: the paper plots these on log axes.
		lo := maxX / 1e6
		if lo <= 0 {
			lo = 1e-6
		}
		ratio := math.Pow(maxX*1.5/lo, 1.0/256)
		for x := lo; x <= maxX*1.5; x *= ratio {
			curve.X = append(curve.X, x)
			curve.Y = append(curve.Y, r.Eval(x))
		}
		res.Curve = curve
		out = append(out, res)
	}
	return out, nil
}
