package experiments

import (
	"fmt"
	"math"
	"sort"

	"spire/internal/core"
	"spire/internal/geom"
	"spire/internal/mem"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/stats"
	"spire/internal/workloads"
)

// rankingVector extracts per-metric mean estimates over the union of
// metric names (missing metrics get +Inf so they sort last).
func rankingVector(est *core.Estimation, metrics []string) []float64 {
	byName := make(map[string]float64, len(est.PerMetric))
	for _, m := range est.PerMetric {
		byName[m.Metric] = m.MeanEstimate
	}
	out := make([]float64, len(metrics))
	for i, m := range metrics {
		if v, ok := byName[m]; ok {
			out[i] = v
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}

func sharedMetrics(a, b *core.Estimation) []string {
	inA := make(map[string]bool)
	for _, m := range a.PerMetric {
		inA[m.Metric] = true
	}
	var out []string
	for _, m := range b.PerMetric {
		if inA[m.Metric] {
			out = append(out, m.Metric)
		}
	}
	sort.Strings(out)
	return out
}

// unweight transforms samples so a time-weighted average degenerates to an
// unweighted mean while preserving each sample's throughput and intensity:
// (T, W, M) -> (1, W/T, M/T).
func unweight(d core.Dataset) core.Dataset {
	var out core.Dataset
	for _, s := range d.Samples {
		if s.T <= 0 {
			continue
		}
		out.Add(core.Sample{Metric: s.Metric, T: 1, W: s.W / s.T, M: s.M / s.T})
	}
	return out
}

// AblationTWAResult compares Eq. 1's time-weighted merging against an
// unweighted mean on each test workload.
type AblationTWAResult struct {
	Workload string
	// SpearmanRho is the rank correlation between the two metric
	// rankings; OverlapTop10 is the top-10 pool overlap.
	SpearmanRho  float64
	OverlapTop10 float64
	// MinShiftAbs is |min estimate TWA - min estimate unweighted|.
	MinShiftAbs float64
}

// AblationTWA quantifies the effect of the time-weighted average.
func (s *Session) AblationTWA() ([]AblationTWAResult, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var out []AblationTWAResult
	for _, r := range runs {
		weighted, err := estimate(ens, r.Data)
		if err != nil {
			return nil, err
		}
		unweighted, err := estimate(ens, unweight(r.Data))
		if err != nil {
			return nil, err
		}
		metrics := sharedMetrics(weighted, unweighted)
		va := rankingVector(weighted, metrics)
		vb := rankingVector(unweighted, metrics)
		rho, err := stats.SpearmanRho(va, vb)
		if err != nil {
			rho = math.NaN()
		}
		k := 10
		if k > len(metrics) {
			k = len(metrics)
		}
		ov, err := stats.OverlapAtK(va, vb, k)
		if err != nil {
			ov = math.NaN()
		}
		out = append(out, AblationTWAResult{
			Workload:     r.Spec.Name,
			SpearmanRho:  rho,
			OverlapTop10: ov,
			MinShiftAbs:  math.Abs(weighted.MaxThroughput - unweighted.MaxThroughput),
		})
	}
	return out, nil
}

// AblationEnsembleResult compares the paper's min-reduction against a mean
// reduction of per-metric estimates.
type AblationEnsembleResult struct {
	Workload string
	Measured float64
	MinEst   float64
	MeanEst  float64
	// MinRatio and MeanRatio are estimate/measured; an upper-bound
	// estimator should sit near or above 1, and the mean reduction is
	// expected to overshoot badly.
	MinRatio  float64
	MeanRatio float64
}

// AblationEnsembleReduction quantifies why SPIRE takes the minimum across
// metrics rather than an average.
func (s *Session) AblationEnsembleReduction() ([]AblationEnsembleResult, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var out []AblationEnsembleResult
	for _, r := range runs {
		est, err := estimate(ens, r.Data)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, m := range est.PerMetric {
			sum += m.MeanEstimate
		}
		mean := sum / float64(len(est.PerMetric))
		res := AblationEnsembleResult{
			Workload: r.Spec.Name,
			Measured: r.Report.IPC,
			MinEst:   est.MaxThroughput,
			MeanEst:  mean,
		}
		if res.Measured > 0 {
			res.MinRatio = res.MinEst / res.Measured
			res.MeanRatio = res.MeanEst / res.Measured
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationMultiplexResult compares rankings from multiplexed sampling
// against an oracle PMU that counts every event continuously.
type AblationMultiplexResult struct {
	Workload     string
	SpearmanRho  float64
	OverlapTop10 float64
}

// AblationMultiplex measures how much ranking fidelity counter
// multiplexing costs.
func (s *Session) AblationMultiplex() ([]AblationMultiplexResult, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var out []AblationMultiplexResult
	for _, r := range runs {
		// Re-run the workload with an oracle sampler.
		prog := r.Spec.Build(s.Cfg.Scale)
		sm, err := sim.New(s.Cfg.core(), prog, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		oracleData, _, err := perfstat.Collect(sm, r.Spec.Name, perfstat.Options{
			IntervalCycles: s.Cfg.IntervalCycles,
			MaxCycles:      s.Cfg.MaxCyclesPerWorkload,
			Multiplex:      false,
		})
		if err != nil {
			return nil, err
		}
		mux, err := estimate(ens, r.Data)
		if err != nil {
			return nil, err
		}
		oracle, err := estimate(ens, oracleData)
		if err != nil {
			return nil, err
		}
		metrics := sharedMetrics(mux, oracle)
		va := rankingVector(mux, metrics)
		vb := rankingVector(oracle, metrics)
		rho, err := stats.SpearmanRho(va, vb)
		if err != nil {
			rho = math.NaN()
		}
		k := 10
		if k > len(metrics) {
			k = len(metrics)
		}
		ov, err := stats.OverlapAtK(va, vb, k)
		if err != nil {
			ov = math.NaN()
		}
		out = append(out, AblationMultiplexResult{Workload: r.Spec.Name, SpearmanRho: rho, OverlapTop10: ov})
	}
	return out, nil
}

// TrainingSizePoint is one point of the training-set size sweep.
type TrainingSizePoint struct {
	Workloads int
	// MeanOverlapTop10 is the average top-10 overlap with the
	// full-training ranking over the test workloads.
	MeanOverlapTop10 float64
}

// AblationTrainingSize trains on growing prefixes of the training suite
// and measures how quickly the test-workload rankings stabilize — the
// paper notes its right-fit defect "can be fixed with more training
// data".
func (s *Session) AblationTrainingSize(sizes []int) ([]TrainingSizePoint, error) {
	full, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	trainRuns, err := s.TrainingRuns()
	if err != nil {
		return nil, err
	}
	testRuns, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	fullEsts := make([]*core.Estimation, len(testRuns))
	for i, r := range testRuns {
		est, err := estimate(full, r.Data)
		if err != nil {
			return nil, err
		}
		fullEsts[i] = est
	}
	var out []TrainingSizePoint
	for _, n := range sizes {
		if n <= 0 || n > len(trainRuns) {
			return nil, fmt.Errorf("experiments: training size %d out of range", n)
		}
		var data core.Dataset
		for _, r := range trainRuns[:n] {
			data.Merge(r.Data)
		}
		ens, err := core.Train(data, core.TrainOptions{})
		if err != nil {
			return nil, err
		}
		var sum float64
		cnt := 0
		for i, r := range testRuns {
			est, err := estimate(ens, r.Data)
			if err != nil {
				continue
			}
			metrics := sharedMetrics(est, fullEsts[i])
			if len(metrics) < 2 {
				continue
			}
			k := 10
			if k > len(metrics) {
				k = len(metrics)
			}
			ov, err := stats.OverlapAtK(rankingVector(est, metrics), rankingVector(fullEsts[i], metrics), k)
			if err != nil {
				continue
			}
			sum += ov
			cnt++
		}
		p := TrainingSizePoint{Workloads: n}
		if cnt > 0 {
			p.MeanOverlapTop10 = sum / float64(cnt)
		}
		out = append(out, p)
	}
	return out, nil
}

// GreedyRightFit is the naive alternative to the paper's shortest-path
// right fit: walk the Pareto front left to right, keeping each sample
// whose chord maintains validity and concavity, else skipping it. Returns
// the fit's total squared overestimation over the front.
func GreedyRightFit(front []geom.Point) float64 {
	if len(front) < 2 {
		return 0
	}
	chain := []geom.Point{front[0]}
	for i := 1; i < len(front); i++ {
		prev := chain[len(chain)-1]
		cand := front[i]
		slope := geom.Slope(prev, cand)
		ok := true
		// Concavity against the previous chord.
		if len(chain) >= 2 {
			prevSlope := geom.Slope(chain[len(chain)-2], prev)
			if slope < prevSlope {
				ok = false
			}
		}
		// Validity over skipped members.
		if ok {
			for _, q := range front {
				if q.X > prev.X && q.X < cand.X {
					lineY := prev.Y + slope*(q.X-prev.X)
					if lineY < q.Y-1e-9 {
						ok = false
						break
					}
				}
			}
		}
		if ok {
			chain = append(chain, cand)
		}
	}
	// Total squared overestimation of the greedy chain over the front.
	evalChain := func(x float64) float64 {
		if x <= chain[0].X {
			return chain[0].Y
		}
		for i := 1; i < len(chain); i++ {
			if x <= chain[i].X {
				a, b := chain[i-1], chain[i]
				t := (x - a.X) / (b.X - a.X)
				return a.Y + t*(b.Y-a.Y)
			}
		}
		return chain[len(chain)-1].Y
	}
	var sq float64
	for _, q := range front {
		d := evalChain(q.X) - q.Y
		if d > 0 {
			sq += d * d
		}
	}
	return sq
}

// RightFitError evaluates a fitted roofline's total squared
// overestimation over a point set (the objective the Dijkstra fit
// minimizes over the Pareto front).
func RightFitError(r *core.Roofline, pts []geom.Point) float64 {
	var sq float64
	for _, p := range pts {
		d := r.Eval(p.X) - p.Y
		if d > 0 {
			sq += d * d
		}
	}
	return sq
}

// WorkloadSuiteNames re-exports the suite roster for tooling.
func WorkloadSuiteNames() []string { return workloads.Names() }

// overlapOrNaN wraps stats.OverlapAtK for callers that tolerate failure.
func overlapOrNaN(a, b []float64, k int) (float64, error) {
	return stats.OverlapAtK(a, b, k)
}

// PrefetchAblation compares a workload's throughput with and without the
// optional L2 stride prefetcher — the simulator-side extension ablation:
// streaming memory-bound workloads should speed up, dependent pointer
// chases should not.
type PrefetchAblation struct {
	Workload    string
	BaseIPC     float64
	PrefetchIPC float64
	// Speedup is PrefetchIPC / BaseIPC.
	Speedup float64
}

// AblationPrefetcher measures the prefetcher's effect on a representative
// workload subset (two streamers, one pointer chase, one compute kernel).
func (s *Session) AblationPrefetcher() ([]PrefetchAblation, error) {
	names := []string{"remhos", "onnx", "faiss-sift1m", "qmcpack"}
	var out []PrefetchAblation
	for _, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		run := func(enable bool) (float64, error) {
			cfg := *s.Cfg.core()
			cfg.Mem.Prefetch = mem.PrefetchConfig{Enable: enable, Degree: 4, MinConfidence: 2}
			sm, err := sim.New(&cfg, spec.Build(s.Cfg.Scale), s.Cfg.Seed)
			if err != nil {
				return 0, err
			}
			res := sm.Run(s.Cfg.MaxCyclesPerWorkload)
			return res.IPC, nil
		}
		base, err := run(false)
		if err != nil {
			return nil, err
		}
		pf, err := run(true)
		if err != nil {
			return nil, err
		}
		a := PrefetchAblation{Workload: name, BaseIPC: base, PrefetchIPC: pf}
		if base > 0 {
			a.Speedup = pf / base
		}
		out = append(out, a)
	}
	return out, nil
}

// IntervalPoint is one sampling-interval setting's agreement with the
// default-interval ranking.
type IntervalPoint struct {
	IntervalCycles   uint64
	MeanOverlapTop10 float64
}

// AblationInterval re-collects the test workloads at several sampling
// interval lengths and measures how stable the bottleneck rankings are —
// the analogue of the paper's choice of a 2-second sampling period.
func (s *Session) AblationInterval(intervals []uint64) ([]IntervalPoint, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	baseEsts := make([]*core.Estimation, len(runs))
	for i, r := range runs {
		est, err := estimate(ens, r.Data)
		if err != nil {
			return nil, err
		}
		baseEsts[i] = est
	}
	var out []IntervalPoint
	for _, iv := range intervals {
		if iv == 0 {
			return nil, fmt.Errorf("experiments: zero sampling interval")
		}
		var sum float64
		cnt := 0
		for i, r := range runs {
			sm, err := sim.New(s.Cfg.core(), r.Spec.Build(s.Cfg.Scale), s.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			data, _, err := perfstat.Collect(sm, r.Spec.Name, perfstat.Options{
				IntervalCycles: iv,
				MaxCycles:      s.Cfg.MaxCyclesPerWorkload,
				GroupSize:      s.Cfg.GroupSize,
				Multiplex:      true,
				PerturbLines:   s.Cfg.PerturbLines,
			})
			if err != nil {
				continue
			}
			est, err := estimate(ens, data)
			if err != nil {
				continue
			}
			metrics := sharedMetrics(est, baseEsts[i])
			if len(metrics) < 2 {
				continue
			}
			k := 10
			if k > len(metrics) {
				k = len(metrics)
			}
			ov, err := stats.OverlapAtK(rankingVector(est, metrics), rankingVector(baseEsts[i], metrics), k)
			if err != nil {
				continue
			}
			sum += ov
			cnt++
		}
		p := IntervalPoint{IntervalCycles: iv}
		if cnt > 0 {
			p.MeanOverlapTop10 = sum / float64(cnt)
		}
		out = append(out, p)
	}
	return out, nil
}

// SeedStability is one workload's ranking robustness across seeds: the
// mean pairwise top-10 overlap between rankings produced from runs that
// differ only in their random streams (addresses, branch outcomes,
// multiplexing phase).
type SeedStability struct {
	Workload         string
	MeanOverlapTop10 float64
	Pairs            int
}

// AblationSeeds measures how much of the bottleneck ranking survives a
// change of random seed — rankings that flip with the seed would be
// sampling-noise artifacts, not bottlenecks.
func (s *Session) AblationSeeds(seeds []int64) ([]SeedStability, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 seeds")
	}
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var out []SeedStability
	for _, r := range runs {
		ests := make([]*core.Estimation, 0, len(seeds))
		for _, seed := range seeds {
			sm, err := sim.New(s.Cfg.core(), r.Spec.Build(s.Cfg.Scale), seed)
			if err != nil {
				return nil, err
			}
			data, _, err := perfstat.Collect(sm, r.Spec.Name, perfstat.Options{
				IntervalCycles: s.Cfg.IntervalCycles,
				MaxCycles:      s.Cfg.MaxCyclesPerWorkload,
				GroupSize:      s.Cfg.GroupSize,
				Multiplex:      true,
				PerturbLines:   s.Cfg.PerturbLines,
			})
			if err != nil {
				continue
			}
			est, err := estimate(ens, data)
			if err != nil {
				continue
			}
			ests = append(ests, est)
		}
		st := SeedStability{Workload: r.Spec.Name}
		var sum float64
		for i := 0; i < len(ests); i++ {
			for j := i + 1; j < len(ests); j++ {
				metrics := sharedMetrics(ests[i], ests[j])
				if len(metrics) < 2 {
					continue
				}
				k := 10
				if k > len(metrics) {
					k = len(metrics)
				}
				ov, err := stats.OverlapAtK(rankingVector(ests[i], metrics), rankingVector(ests[j], metrics), k)
				if err != nil {
					continue
				}
				sum += ov
				st.Pairs++
			}
		}
		if st.Pairs > 0 {
			st.MeanOverlapTop10 = sum / float64(st.Pairs)
		}
		out = append(out, st)
	}
	return out, nil
}
