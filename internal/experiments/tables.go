package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/report"
	"spire/internal/sim"
	"spire/internal/tma"
)

// Table1Row is one workload of the paper's Table I: name, configuration,
// and main TMA bottleneck, plus our measured detail.
type Table1Row struct {
	Name     string
	Config   string
	Testing  bool
	IPC      float64
	TMA      tma.Breakdown
	Main     pmu.Area
	Expected pmu.Area
}

// Table1 classifies every suite workload with the TMA baseline.
func (s *Session) Table1() ([]Table1Row, error) {
	train, err := s.TrainingRuns()
	if err != nil {
		return nil, err
	}
	test, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, r := range append(append([]WorkloadRun{}, train...), test...) {
		rows = append(rows, Table1Row{
			Name:     r.Spec.Name,
			Config:   r.Spec.Config,
			Testing:  r.Spec.Testing,
			IPC:      r.Report.IPC,
			TMA:      r.TMA,
			Main:     r.TMA.MainBottleneck(),
			Expected: r.Spec.Expected,
		})
	}
	return rows, nil
}

// RenderTable1 prints Table I.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	t := report.Table{
		Title:   "Table I: Workloads and their main TMA bottleneck",
		Headers: []string{"Workload", "Configuration", "Set", "IPC", "Main TMA Bottleneck", "Retiring", "FE", "BadSpec", "Mem", "Core"},
	}
	for _, r := range rows {
		set := "train"
		if r.Testing {
			set = "test"
		}
		t.AddRow(
			r.Name, r.Config, set,
			fmt.Sprintf("%.2f", r.IPC),
			r.Main.String(),
			fmt.Sprintf("%.0f%%", 100*r.TMA.Retiring),
			fmt.Sprintf("%.0f%%", 100*r.TMA.FrontEnd),
			fmt.Sprintf("%.0f%%", 100*r.TMA.BadSpeculation),
			fmt.Sprintf("%.0f%%", 100*r.TMA.MemoryBound),
			fmt.Sprintf("%.0f%%", 100*r.TMA.CoreBound),
		)
	}
	return t.Render(w)
}

// Table2Entry is one ranked metric of the paper's Table II: the mean IPC
// estimation, the metric abbreviation, and its closest TMA area.
type Table2Entry struct {
	Estimate float64
	Metric   string
	Abbr     string
	Area     pmu.Area
}

// Table2Col is one test workload's column in Table II.
type Table2Col struct {
	Workload    string
	MeasuredIPC float64
	TMA         tma.Breakdown
	TMAMain     pmu.Area
	Top         []Table2Entry
	// DominantArea is the most frequent TMA area among the top metrics
	// (the SPIRE-side bottleneck verdict).
	DominantArea pmu.Area
	// FracMatchingTMA is the fraction of top metrics whose area equals
	// the TMA main bottleneck — the paper's qualitative agreement.
	FracMatchingTMA float64
	// SpireEstimate is the ensemble's max-throughput estimate.
	SpireEstimate float64
}

// TopK is the number of metrics Table II reports per workload.
const TopK = 10

// Table2 runs the SPIRE analysis of the four test workloads against the
// trained ensemble and compares each ranking with the TMA baseline.
func (s *Session) Table2() ([]Table2Col, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	runs, err := s.TestRuns()
	if err != nil {
		return nil, err
	}
	var cols []Table2Col
	for _, r := range runs {
		est, err := estimate(ens, r.Data)
		if err != nil {
			return nil, fmt.Errorf("experiments: estimating %s: %w", r.Spec.Name, err)
		}
		col := Table2Col{
			Workload:      r.Spec.Name,
			MeasuredIPC:   r.Report.IPC,
			TMA:           r.TMA,
			TMAMain:       r.TMA.MainBottleneck(),
			SpireEstimate: est.MaxThroughput,
		}
		areaCount := make(map[pmu.Area]int)
		match := 0
		for _, m := range est.TopMetrics(TopK) {
			ev, ok := pmu.Lookup(m.Metric)
			if !ok {
				return nil, fmt.Errorf("experiments: metric %q not in registry", m.Metric)
			}
			e := Table2Entry{
				Estimate: m.MeanEstimate,
				Metric:   m.Metric,
				Abbr:     ev.Abbr,
				Area:     ev.Area,
			}
			col.Top = append(col.Top, e)
			areaCount[ev.Area]++
			if ev.Area == col.TMAMain {
				match++
			}
		}
		if len(col.Top) > 0 {
			col.FracMatchingTMA = float64(match) / float64(len(col.Top))
		}
		best, bestN := pmu.AreaNone, -1
		for _, a := range []pmu.Area{pmu.AreaFrontEnd, pmu.AreaBadSpeculation, pmu.AreaMemory, pmu.AreaCore} {
			if areaCount[a] > bestN {
				best, bestN = a, areaCount[a]
			}
		}
		col.DominantArea = best
		cols = append(cols, col)
	}
	return cols, nil
}

// RenderTable2 prints Table II: top metrics per test workload with mean
// IPC estimations and closest TMA areas.
func RenderTable2(w io.Writer, cols []Table2Col) error {
	for _, c := range cols {
		t := report.Table{
			Title: fmt.Sprintf("Table II (%s): measured IPC %.2f, SPIRE estimate %.2f, TMA main bottleneck %s [%s]",
				c.Workload, c.MeasuredIPC, c.SpireEstimate, c.TMAMain, c.TMA),
			Headers: []string{"Rank", "Mean est.", "Abbr", "Metric", "Closest TMA area"},
		}
		for i, e := range c.Top {
			t.AddRow(
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%.2f", e.Estimate),
				e.Abbr,
				e.Metric,
				e.Area.String(),
			)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "SPIRE dominant area: %s; top-%d agreement with TMA main: %.0f%%\n\n",
			c.DominantArea, len(c.Top), 100*c.FracMatchingTMA); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable3 prints Table III: the metric abbreviation registry grouped
// by microarchitecture area.
func RenderTable3(w io.Writer) error {
	t := report.Table{
		Title:   "Table III: performance metric abbreviations and names",
		Headers: []string{"Abbr", "Expanded metric name", "TMA area"},
	}
	evs := pmu.PaperTableEvents()
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Area != evs[j].Area {
			return evs[i].Area < evs[j].Area
		}
		return evs[i].Abbr < evs[j].Abbr
	})
	for _, ev := range evs {
		t.AddRow(ev.Abbr, ev.Name, ev.Area.String())
	}
	return t.Render(w)
}

// OverheadResult is the §IV sampling-overhead experiment.
type OverheadResult struct {
	// PerWorkload maps workload to its total overhead fraction: the
	// accounted counter-reprogramming cost plus the measured slowdown
	// from the sampling agent's cache perturbation against an unsampled
	// baseline run.
	PerWorkload map[string]float64
	Mean        float64
	Max         float64
}

// Overhead estimates the sampling overhead fraction for every workload by
// re-running each without any sampling and comparing throughput.
func (s *Session) Overhead() (OverheadResult, error) {
	train, err := s.TrainingRuns()
	if err != nil {
		return OverheadResult{}, err
	}
	test, err := s.TestRuns()
	if err != nil {
		return OverheadResult{}, err
	}
	runs := append(append([]WorkloadRun{}, train...), test...)

	// Unsampled baselines, bounded-parallel like runAll.
	type base struct {
		ipc float64
		err error
	}
	bases := make([]base, len(runs))
	sem := make(chan struct{}, s.Cfg.Parallel)
	var wg sync.WaitGroup
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r WorkloadRun) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sm, err := sim.New(s.Cfg.core(), r.Spec.Build(s.Cfg.Scale), s.Cfg.Seed)
			if err != nil {
				bases[i] = base{err: err}
				return
			}
			res := sm.Run(s.Cfg.MaxCyclesPerWorkload)
			bases[i] = base{ipc: res.IPC}
		}(i, r)
	}
	wg.Wait()

	out := OverheadResult{PerWorkload: make(map[string]float64, len(runs))}
	var sum float64
	for i, r := range runs {
		if bases[i].err != nil {
			return OverheadResult{}, bases[i].err
		}
		measured := 0.0
		if r.Report.IPC > 0 && bases[i].ipc > r.Report.IPC {
			measured = bases[i].ipc/r.Report.IPC - 1
		}
		oh := r.Report.OverheadFraction + measured
		out.PerWorkload[r.Spec.Name] = oh
		sum += oh
		if oh > out.Max {
			out.Max = oh
		}
	}
	out.Mean = sum / float64(len(runs))
	return out, nil
}

// EstimationAccuracy summarizes how close the ensemble's max-throughput
// estimates are to measured IPC on the test workloads; SPIRE estimates an
// upper bound, so ratios at or above ~1 are the expected shape.
type EstimationAccuracy struct {
	Workload  string
	Measured  float64
	Estimated float64
	Ratio     float64
}

// Accuracy computes estimate/measured for the test workloads.
func (s *Session) Accuracy() ([]EstimationAccuracy, error) {
	cols, err := s.Table2()
	if err != nil {
		return nil, err
	}
	var out []EstimationAccuracy
	for _, c := range cols {
		r := 0.0
		if c.MeasuredIPC > 0 {
			r = c.SpireEstimate / c.MeasuredIPC
		}
		out = append(out, EstimationAccuracy{
			Workload:  c.Workload,
			Measured:  c.MeasuredIPC,
			Estimated: c.SpireEstimate,
			Ratio:     r,
		})
	}
	return out, nil
}

// Ensemble re-exported helpers for tooling.

// AnalyzeDataset estimates an arbitrary dataset against the session's
// trained ensemble.
func (s *Session) AnalyzeDataset(d core.Dataset) (*core.Estimation, error) {
	ens, err := s.Ensemble()
	if err != nil {
		return nil, err
	}
	return estimate(ens, d)
}
