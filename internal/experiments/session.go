// Package experiments orchestrates the paper's evaluation (§IV-V): it runs
// the 27-workload suite on the simulated core, collects multiplexed
// counter samples, trains the SPIRE ensemble on the 23 training workloads,
// analyzes the 4 test workloads, and regenerates every table and figure.
// Both cmd/spire-bench and the repository's benchmark harness build on it.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"spire/internal/core"
	"spire/internal/perfstat"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/tma"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// Config scales the experiment.
type Config struct {
	// Scale multiplies each workload's dynamic instruction count
	// (1.0 = the standard 400k-instruction runs).
	Scale float64
	// Seed drives all deterministic randomness.
	Seed int64
	// IntervalCycles is the sampling interval (the paper's "2 seconds").
	IntervalCycles uint64
	// MaxCyclesPerWorkload caps each run (the paper's "10 minutes").
	MaxCyclesPerWorkload uint64
	// GroupSize is the simultaneous-counter budget for multiplexing.
	GroupSize int
	// Core selects the simulated microarchitecture; nil means the
	// Skylake-SP-like uarch.Default().
	Core *uarch.Config
	// PerturbLines is the sampling agent's per-switch cache footprint
	// (measured overhead component).
	PerturbLines int
	// Parallel runs workloads on multiple goroutines (simulators are
	// independent).
	Parallel int
	// TrainWorkers bounds the per-metric fitting goroutines during
	// ensemble training (0 = GOMAXPROCS). The trained model is
	// byte-identical for every worker count.
	TrainWorkers int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Scale:                1.0,
		Seed:                 42,
		IntervalCycles:       50_000,
		MaxCyclesPerWorkload: 4_000_000,
		GroupSize:            4,
		PerturbLines:         32,
		Parallel:             4,
	}
}

// core resolves the selected microarchitecture.
func (c Config) core() *uarch.Config {
	if c.Core != nil {
		return c.Core
	}
	return uarch.Default()
}

// QuickConfig returns a reduced configuration for tests and fast benches.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.12
	c.IntervalCycles = 25_000
	c.MaxCyclesPerWorkload = 1_200_000
	return c
}

// WorkloadRun is one workload's full measurement: the multiplexed sample
// stream SPIRE consumes, the oracle counter totals, and the TMA baseline
// computed from them.
type WorkloadRun struct {
	Spec   workloads.Spec
	Data   core.Dataset
	Report perfstat.Report
	Counts pmu.Counts
	TMA    tma.Breakdown
}

// RunWorkload simulates one workload under cfg and measures it.
func RunWorkload(spec workloads.Spec, cfg Config) (WorkloadRun, error) {
	prog := spec.Build(cfg.Scale)
	s, err := sim.New(cfg.core(), prog, cfg.Seed)
	if err != nil {
		return WorkloadRun{}, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	data, rep, err := perfstat.Collect(s, spec.Name, perfstat.Options{
		IntervalCycles: cfg.IntervalCycles,
		MaxCycles:      cfg.MaxCyclesPerWorkload,
		GroupSize:      cfg.GroupSize,
		Multiplex:      true,
		PerturbLines:   cfg.PerturbLines,
	})
	if err != nil {
		return WorkloadRun{}, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	counts := s.PMU().Snapshot()
	bd, err := tma.Analyze(counts, cfg.core().IssueWidth)
	if err != nil {
		return WorkloadRun{}, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	return WorkloadRun{Spec: spec, Data: data, Report: rep, Counts: counts, TMA: bd}, nil
}

// Session memoizes the expensive pieces (workload runs, the trained
// ensemble) so that multiple tables/figures can share them.
type Session struct {
	Cfg Config

	mu        sync.Mutex
	trainRuns []WorkloadRun
	testRuns  []WorkloadRun
	ensemble  *core.Ensemble
	trainRep  *core.TrainReport
}

// NewSession creates a session for cfg.
func NewSession(cfg Config) *Session {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	return &Session{Cfg: cfg}
}

// runAll executes specs with bounded parallelism, preserving order.
func (s *Session) runAll(specs []workloads.Spec) ([]WorkloadRun, error) {
	runs := make([]WorkloadRun, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, s.Cfg.Parallel)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec workloads.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[i], errs[i] = RunWorkload(spec, s.Cfg)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// TrainingRuns measures the 23 training workloads (memoized).
func (s *Session) TrainingRuns() ([]WorkloadRun, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trainRuns == nil {
		runs, err := s.runAll(workloads.Training())
		if err != nil {
			return nil, err
		}
		s.trainRuns = runs
	}
	return s.trainRuns, nil
}

// TestRuns measures the 4 test workloads (memoized).
func (s *Session) TestRuns() ([]WorkloadRun, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.testRuns == nil {
		runs, err := s.runAll(workloads.Testing())
		if err != nil {
			return nil, err
		}
		s.testRuns = runs
	}
	return s.testRuns, nil
}

// Ensemble trains the SPIRE model on all training-workload samples
// (memoized).
func (s *Session) Ensemble() (*core.Ensemble, error) {
	runs, err := s.TrainingRuns()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ensemble == nil {
		var data core.Dataset
		for _, r := range runs {
			data.Merge(r.Data)
		}
		e, rep, err := core.TrainContext(context.Background(), data, core.TrainOptions{
			WorkUnit: "instructions",
			TimeUnit: "cycles",
			Workers:  s.Cfg.TrainWorkers,
		})
		if err != nil {
			return nil, err
		}
		s.ensemble = e
		s.trainRep = rep
	}
	return s.ensemble, nil
}

// TrainReport returns the report from the memoized training run, training
// first if necessary.
func (s *Session) TrainReport() (*core.TrainReport, error) {
	if _, err := s.Ensemble(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trainRep, nil
}

// TrainingDataset concatenates all training samples (after the runs are
// available).
func (s *Session) TrainingDataset() (core.Dataset, error) {
	runs, err := s.TrainingRuns()
	if err != nil {
		return core.Dataset{}, err
	}
	var data core.Dataset
	for _, r := range runs {
		data.Merge(r.Data)
	}
	return data, nil
}
