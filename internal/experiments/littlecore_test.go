package experiments

import (
	"testing"

	"spire/internal/pmu"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// TestArchitectureIndependence exercises the paper's central generality
// claim: the identical pipeline — same workloads, same sampler, same
// training code, no architecture-specific parameters — must work on a
// completely different core. We swap in the 2-wide LittleCore and verify
// that SPIRE still learns a usable model whose analysis of the memory- and
// bad-speculation-bound test workloads surfaces the right metric families.
func TestArchitectureIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("little-core pipeline skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Core = uarch.LittleCore()
	s := NewSession(cfg)

	cols, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 {
		t.Fatalf("columns = %d", len(cols))
	}
	for _, c := range cols {
		if c.MeasuredIPC <= 0 || c.MeasuredIPC > float64(cfg.Core.IssueWidth) {
			t.Errorf("%s: IPC %.2f outside (0, %d]", c.Workload, c.MeasuredIPC, cfg.Core.IssueWidth)
		}
		if len(c.Top) == 0 {
			t.Fatalf("%s: empty ranking", c.Workload)
		}
	}
	// The strongly-characterized workloads must still analyze correctly
	// on the little core: onnx memory-bound, scikit-sparsify
	// branch-bound.
	for _, c := range cols {
		var want pmu.Area
		switch c.Workload {
		case "onnx":
			want = pmu.AreaMemory
		case "scikit-sparsify":
			want = pmu.AreaBadSpeculation
		default:
			continue
		}
		count := 0
		for _, e := range c.Top {
			if e.Area == want {
				count++
			}
		}
		if c.DominantArea != want && c.Top[0].Area != want && float64(count) < 0.3*float64(len(c.Top)) {
			t.Errorf("%s on little core: %v not surfaced (dominant %v, top1 %v)",
				c.Workload, want, c.DominantArea, c.Top[0].Area)
		}
	}
}

// TestLittleCoreIsSlower sanity-checks the second microarchitecture: the
// 2-wide core must be substantially slower than the big core on a
// compute-heavy workload.
func TestLittleCoreIsSlower(t *testing.T) {
	spec, err := workloads.ByName("arrayfire-blas")
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	cfg.Scale = 0.05
	big, err := RunWorkload(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Core = uarch.LittleCore()
	little, err := RunWorkload(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if little.Report.IPC >= big.Report.IPC {
		t.Errorf("little core IPC %.2f should trail big core %.2f",
			little.Report.IPC, big.Report.IPC)
	}
	if little.Report.IPC > 2.0 {
		t.Errorf("2-wide core cannot exceed IPC 2, got %.2f", little.Report.IPC)
	}
}
