package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "Name", "alpha", "22", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableShortRows(t *testing.T) {
	tab := Table{Headers: []string{"A", "B", "C"}}
	tab.AddRow("only")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short row lost")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, [][]string{
		{"a", "b"},
		{"x,y", `He said "hi"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n\"x,y\",\"He said \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestWriteCSVSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf,
		Series{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "s2", X: []float64{3}, Y: []float64{30, 99}}, // extra Y ignored
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header + 3)", len(lines))
	}
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[3] != "s2,3,30" {
		t.Errorf("last = %q", lines[3])
	}
}

func TestAsciiPlot(t *testing.T) {
	var buf bytes.Buffer
	err := AsciiPlot(&buf, 40, 10,
		Series{Name: "roof", X: []float64{0.1, 1, 10}, Y: []float64{1, 4, 4}},
		Series{Name: "apps", X: []float64{0.5}, Y: []float64{2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "roof") || !strings.Contains(out, "apps") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("marks missing:\n%s", out)
	}
}

func TestAsciiPlotEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, 4, 2); err == nil {
		t.Error("tiny plot should fail")
	}
	buf.Reset()
	// Only non-positive data: log plot skips it gracefully.
	err := AsciiPlot(&buf, 40, 8, Series{Name: "zero", X: []float64{0}, Y: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no positive data") {
		t.Errorf("expected empty-plot notice, got %q", buf.String())
	}
	buf.Reset()
	// Single point: ranges degenerate but must not panic.
	if err := AsciiPlot(&buf, 40, 8, Series{Name: "one", X: []float64{5}, Y: []float64{5}}); err != nil {
		t.Fatal(err)
	}
}
