// Package report renders the experiment outputs: fixed-width ASCII tables
// (the paper's Tables I-III) and CSV series for figures (the paper's
// roofline plots). Everything writes to an io.Writer so tools and tests
// can capture output.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with column auto-sizing.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(widths))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes rows of cells as comma-separated values with minimal quoting
// (fields containing commas or quotes are quoted).
func CSV(w io.Writer, rows [][]string) error {
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named list of (x, y) points for figure export.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// WriteCSV exports one or more series sharing no x-grid: each row is
// (series, x, y).
func WriteCSV(w io.Writer, series ...Series) error {
	rows := [][]string{{"series", "x", "y"}}
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			rows = append(rows, []string{
				s.Name,
				fmt.Sprintf("%g", s.X[i]),
				fmt.Sprintf("%g", s.Y[i]),
			})
		}
	}
	return CSV(w, rows)
}

// AsciiPlot renders a crude log-log scatter/line plot of the series, good
// enough to eyeball roofline shapes in a terminal. Non-positive values
// are skipped (log scale).
func AsciiPlot(w io.Writer, width, height int, series ...Series) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	type pt struct {
		x, y float64
		mark byte
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	var pts []pt
	minX, maxX, minY, maxY := 0.0, 0.0, 0.0, 0.0
	first := true
	for si, s := range series {
		m := marks[si%len(marks)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if x <= 0 || y <= 0 {
				continue
			}
			if first {
				minX, maxX, minY, maxY = x, x, y, y
				first = false
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			pts = append(pts, pt{x, y, m})
		}
	}
	if first {
		_, err := fmt.Fprintln(w, "(no positive data to plot)")
		return err
	}
	if maxX == minX {
		maxX = minX * 2
	}
	if maxY == minY {
		maxY = minY * 2
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	lg := func(v float64) float64 { return log10(v) }
	for _, p := range pts {
		cx := int((lg(p.x) - lg(minX)) / (lg(maxX) - lg(minX)) * float64(width-1))
		cy := int((lg(p.y) - lg(minY)) / (lg(maxY) - lg(minY)) * float64(height-1))
		row := height - 1 - cy
		grid[row][cx] = p.mark
	}
	for i, s := range series {
		if _, err := fmt.Fprintf(w, "%c = %s  ", marks[i%len(marks)], s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\ny: %.3g .. %.3g (log)\n", minY, maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "x: %.3g .. %.3g (log)\n", minX, maxX)
	return err
}

func log10(v float64) float64 { return math.Log10(v) }
