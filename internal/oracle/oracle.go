// Package oracle holds slow-but-obviously-correct reference
// implementations of SPIRE's fitting algorithms, used only by the
// differential test suites. Each function favors the most direct possible
// formulation of the paper's definitions — quadratic/exponential
// enumeration instead of the optimized geometry and shortest-path code in
// internal/geom, internal/graphalg and internal/core — so that any
// disagreement between the two points at a bug in the fast path.
package oracle

import (
	"math"

	"spire/internal/geom"
)

// LeftEval evaluates the left-region bound the paper defines (§III-D,
// Fig. 5) at intensity x: the least concave majorant of the origin and
// every point at or left of the peak. For a finite point set the majorant
// at x is the maximum over all two-point convex combinations that span x,
// which this computes directly in O(n²) per probe. NaN is returned when
// pts is empty or x is outside [0, peak intensity].
func LeftEval(pts []geom.Point, x float64) float64 {
	peak, ok := maxYPoint(pts)
	if !ok || math.IsNaN(x) || x < 0 || x > peak.X {
		return math.NaN()
	}
	cand := []geom.Point{{X: 0, Y: 0}}
	for _, p := range pts {
		if p.X <= peak.X {
			cand = append(cand, p)
		}
	}
	best := math.Inf(-1)
	for _, p := range cand {
		if p.X == x && p.Y > best {
			best = p.Y
		}
	}
	for _, a := range cand {
		for _, b := range cand {
			if a.X >= b.X || x < a.X || x > b.X {
				continue
			}
			t := (x - a.X) / (b.X - a.X)
			if v := a.Y + t*(b.Y-a.Y); v > best {
				best = v
			}
		}
	}
	if math.IsInf(best, -1) {
		return math.NaN()
	}
	return best
}

// maxYPoint returns the highest-Y point, ties broken by lower X (the
// fast path's peak selection rule), and ok=false for an empty slice.
func maxYPoint(pts []geom.Point) (geom.Point, bool) {
	if len(pts) == 0 {
		return geom.Point{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Y > best.Y || (p.Y == best.Y && p.X < best.X) {
			best = p
		}
	}
	return best, true
}

// ParetoFront returns the points that are Pareto-optimal when maximizing
// both coordinates, checked pair-by-pair in O(n²): a point survives iff no
// other point dominates it (>= in both coordinates, > in at least one).
// Duplicates are collapsed; the result ascends in X.
func ParetoFront(pts []geom.Point) []geom.Point {
	var front []geom.Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.X >= p.X && q.Y >= p.Y && (q.X > p.X || q.Y > p.Y) {
				dominated = true
				break
			}
			// Collapse exact duplicates: keep only the first.
			if q == p && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	// Insertion sort by ascending X (front is tiny).
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && front[j].X < front[j-1].X; j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	return front
}

// rightProblem carries the shared state of one right-region fit: the
// Pareto front (ascending X, descending Y), the optional I=+Inf sample,
// the peak level, and the comparison tolerance — all defined exactly as
// the fast path defines them.
type rightProblem struct {
	front []geom.Point
	inf   *geom.Point
	peakY float64
	tol   float64
}

// chord is one candidate segment from front[j] (or the +Inf node when
// j == len(front)) down-left to front[i].
type chord struct {
	valid bool
	err   float64
	slope float64
}

// chord computes segment validity, squared overestimation error over
// skipped front members, and slope, per the paper's objective.
func (rp *rightProblem) chord(j, i int) chord {
	m := len(rp.front)
	if j == m {
		// Horizontal segment from the +Inf sample to front[i]: always
		// valid (the front descends), erring over every member right of
		// i plus the +Inf sample itself.
		c := chord{valid: true, slope: 0}
		for k := i + 1; k < m; k++ {
			d := rp.front[i].Y - rp.front[k].Y
			c.err += d * d
		}
		d := rp.front[i].Y - rp.inf.Y
		c.err += d * d
		return c
	}
	a, b := rp.front[i], rp.front[j]
	c := chord{valid: true, slope: geom.Slope(a, b)}
	for k := i + 1; k < j; k++ {
		lineY := a.Y + c.slope*(rp.front[k].X-a.X)
		d := lineY - rp.front[k].Y
		if d < -rp.tol {
			return chord{}
		}
		c.err += d * d
	}
	return c
}

// endErr is the cost of finishing with the horizontal peak-level segment
// from the leftmost front member E to front[i]: it overestimates every
// member in between and the member it drops down to.
func (rp *rightProblem) endErr(i int) float64 {
	if i == 0 {
		return 0
	}
	var e float64
	for k := 1; k <= i; k++ {
		d := rp.peakY - rp.front[k].Y
		e += d * d
	}
	return e
}

// seqCost sums a node sequence's chord errors plus the closing horizontal
// segment. nodes descend from the rightmost node (len(front) when the
// +Inf sample leads) to the last chosen finite member; NaN is returned
// for a structurally invalid sequence.
func (rp *rightProblem) seqCost(nodes []int) float64 {
	if len(nodes) < 2 {
		return math.NaN()
	}
	var cost float64
	lastSlope := math.Inf(1)
	for t := 0; t+1 < len(nodes); t++ {
		c := rp.chord(nodes[t], nodes[t+1])
		if !c.valid || c.slope > lastSlope+rp.tol {
			return math.NaN()
		}
		cost += c.err
		lastSlope = c.slope
	}
	return cost + rp.endErr(nodes[len(nodes)-1])
}

// newRightProblem mirrors the fast path's preprocessing: Pareto front,
// the +Inf short-circuits, and dominated-member filtering. done reports
// that the fit is already decided without enumeration, with the given
// tail (chain empty).
func newRightProblem(right []geom.Point, inf *geom.Point) (rp *rightProblem, tail float64, done bool) {
	front := ParetoFront(right)
	if len(front) == 0 {
		if inf != nil {
			return nil, inf.Y, true
		}
		return nil, math.NaN(), true
	}
	peakY := front[0].Y
	if inf != nil && inf.Y >= peakY {
		return nil, inf.Y, true
	}
	if inf != nil {
		kept := front[:0]
		for _, p := range front {
			if p.Y > inf.Y {
				kept = append(kept, p)
			}
		}
		front = kept
		if len(front) == 0 {
			return nil, inf.Y, true
		}
	}
	if len(front) == 1 && inf == nil {
		return nil, front[0].Y, true
	}
	return &rightProblem{
		front: front,
		inf:   inf,
		peakY: peakY,
		tol:   1e-9 * (1 + math.Abs(peakY)),
	}, 0, false
}

// RightFit solves the right-region fitting problem (paper §III-D, Fig. 6)
// by exhaustively enumerating every valid node sequence over the
// segment-compatibility graph — every descending choice of Pareto-front
// members whose consecutive chords do not overhang skipped members and
// grow monotonically steeper leftward — and returning a minimum-cost
// chain (ascending, finite) with its tail level. Exponential in the front
// size; callers keep inputs small.
func RightFit(right []geom.Point, inf *geom.Point) (chain []geom.Point, tail float64) {
	rp, tail, done := newRightProblem(right, inf)
	if done {
		return nil, tail
	}
	m := len(rp.front)
	rightmost := m - 1
	if inf != nil {
		rightmost = m
	}

	bestCost := math.Inf(1)
	var bestSeq []int
	var dfs func(seq []int, costSoFar, lastSlope float64)
	dfs = func(seq []int, costSoFar, lastSlope float64) {
		cur := seq[len(seq)-1]
		if total := costSoFar + rp.endErr(cur); total < bestCost {
			bestCost = total
			bestSeq = append([]int(nil), seq...)
		}
		for h := cur - 1; h >= 0; h-- {
			c := rp.chord(cur, h)
			if !c.valid || c.slope > lastSlope+rp.tol {
				continue
			}
			dfs(append(seq, h), costSoFar+c.err, c.slope)
		}
	}
	for i := rightmost - 1; i >= 0; i-- {
		c := rp.chord(rightmost, i)
		if !c.valid {
			continue
		}
		dfs([]int{rightmost, i}, c.err, c.slope)
	}
	if bestSeq == nil {
		// Mirrors the fast path's defensive fallback; unreachable in
		// practice because adjacent chords are always valid.
		if inf != nil {
			return nil, rp.front[m-1].Y
		}
		return nil, rp.peakY
	}
	for t := len(bestSeq) - 1; t >= 0; t-- {
		if bestSeq[t] == m {
			continue
		}
		chain = append(chain, rp.front[bestSeq[t]])
	}
	return chain, chain[len(chain)-1].Y
}

// BestRightCost returns the exhaustive minimum cost for the right-region
// problem, or 0 with done=true when the fit short-circuits before
// enumeration (empty/singleton fronts and +Inf dominance).
func BestRightCost(right []geom.Point, inf *geom.Point) (cost float64, done bool) {
	if _, _, shortcut := newRightProblem(right, inf); shortcut {
		return 0, true
	}
	chain, _ := RightFit(right, inf)
	return ChainCost(right, chain, inf), false
}

// ChainCost scores an already-chosen right-region chain (ascending finite
// breakpoints, as fitRight returns) under the same objective the
// enumeration minimizes. It maps chain members back to Pareto-front
// indices by X (front abscissae are unique) and sums the node sequence's
// cost. NaN is returned when the chain is not a valid descending
// selection of front members.
func ChainCost(right []geom.Point, chain []geom.Point, inf *geom.Point) float64 {
	rp, _, done := newRightProblem(right, inf)
	if done {
		return math.NaN()
	}
	m := len(rp.front)
	nodes := make([]int, 0, len(chain)+1)
	if inf != nil {
		nodes = append(nodes, m)
	} else {
		// The rightmost finite member always leads the sequence.
		nodes = append(nodes, m-1)
	}
	for t := len(chain) - 1; t >= 0; t-- {
		idx := -1
		for k, p := range rp.front {
			if p.X == chain[t].X && p.Y == chain[t].Y {
				idx = k
				break
			}
		}
		if idx < 0 {
			return math.NaN()
		}
		if idx != nodes[len(nodes)-1] {
			nodes = append(nodes, idx)
		}
	}
	return rp.seqCost(nodes)
}
