package oracle

import (
	"math"
	"testing"

	"spire/internal/geom"
)

func TestLeftEvalTriangle(t *testing.T) {
	// Points (1,1), (2,4), (4,5): majorant from origin is the chord
	// origin->(2,4) then (2,4)->(4,5); (1,1) lies strictly below.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 4}, {X: 4, Y: 5}}
	cases := []struct{ x, want float64 }{
		{0, 0},
		{1, 2},   // chord origin->(2,4) at x=1, above the (1,1) sample
		{2, 4},
		{3, 4.5}, // chord (2,4)->(4,5)
		{4, 5},
	}
	for _, c := range cases {
		if got := LeftEval(pts, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LeftEval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got := LeftEval(pts, 5); !math.IsNaN(got) {
		t.Errorf("LeftEval beyond peak = %g, want NaN", got)
	}
	if got := LeftEval(nil, 1); !math.IsNaN(got) {
		t.Errorf("LeftEval(empty) = %g, want NaN", got)
	}
}

func TestParetoFrontNaive(t *testing.T) {
	pts := []geom.Point{
		{X: 1, Y: 5}, {X: 2, Y: 3}, {X: 2, Y: 3}, // duplicate collapses
		{X: 1.5, Y: 2},                           // dominated by (2,3)
		{X: 4, Y: 1},
	}
	front := ParetoFront(pts)
	want := []geom.Point{{X: 1, Y: 5}, {X: 2, Y: 3}, {X: 4, Y: 1}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestRightFitShortCircuits(t *testing.T) {
	inf := &geom.Point{X: math.Inf(1), Y: 9}
	if chain, tail := RightFit(nil, inf); chain != nil || tail != 9 {
		t.Errorf("empty front: chain %v tail %g", chain, tail)
	}
	// The +Inf sample dominates the whole front: flat bound at its level.
	pts := []geom.Point{{X: 2, Y: 5}, {X: 3, Y: 4}}
	if chain, tail := RightFit(pts, inf); chain != nil || tail != 9 {
		t.Errorf("dominated front: chain %v tail %g", chain, tail)
	}
	// Single finite member, no +Inf: flat bound at its level.
	if chain, tail := RightFit(pts[:1], nil); chain != nil || tail != 5 {
		t.Errorf("singleton front: chain %v tail %g", chain, tail)
	}
}

func TestRightFitDescendingFrontIsExact(t *testing.T) {
	// A strictly concave-up descending front: the optimal fit touches
	// every member, with zero error.
	pts := []geom.Point{{X: 1, Y: 8}, {X: 2, Y: 4}, {X: 4, Y: 2}, {X: 8, Y: 1}}
	chain, tail := RightFit(pts, nil)
	if len(chain) != len(pts) {
		t.Fatalf("chain = %v, want all of %v", chain, pts)
	}
	for i := range pts {
		if chain[i] != pts[i] {
			t.Fatalf("chain = %v, want %v", chain, pts)
		}
	}
	if tail != 1 {
		t.Errorf("tail = %g, want 1", tail)
	}
	if cost := ChainCost(pts, chain, nil); cost != 0 {
		t.Errorf("ChainCost = %g, want 0", cost)
	}
}

func TestChainCostInvalidChain(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 8}, {X: 2, Y: 4}, {X: 4, Y: 2}}
	if cost := ChainCost(pts, []geom.Point{{X: 99, Y: 99}}, nil); !math.IsNaN(cost) {
		t.Errorf("cost of foreign chain = %g, want NaN", cost)
	}
}
