package uarch

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spire/internal/isa"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateCatchesBreakage(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero issue width":   func(c *Config) { c.IssueWidth = 0 },
		"zero decode width":  func(c *Config) { c.MITEWidth = 0 },
		"tiny idq":           func(c *Config) { c.IDQCapacity = 1 },
		"zero rob":           func(c *Config) { c.ROBSize = 0 },
		"zero mshrs":         func(c *Config) { c.MSHRs = 0 },
		"too many ports":     func(c *Config) { c.NumPorts = 20 },
		"bad fetch":          func(c *Config) { c.FetchBytes = 1 },
		"bad dsb":            func(c *Config) { c.DSBWindows = 0 },
		"bad predictor":      func(c *Config) { c.GShareBits = 0 },
		"missing op binding": func(c *Config) { delete(c.Ops, isa.OpLoad) },
		"empty port mask":    func(c *Config) { c.Ops[isa.OpLoad] = OpClass{Ports: 0, Latency: 1} },
		"port out of range":  func(c *Config) { c.Ops[isa.OpLoad] = OpClass{Ports: 1 << 12, Latency: 1} },
		"zero latency":       func(c *Config) { c.Ops[isa.OpLoad] = OpClass{Ports: 1, Latency: 0} },
	}
	for name, mutate := range mutations {
		cfg := Default()
		mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestPortMask(t *testing.T) {
	m := PortMask(0b1010)
	if m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Error("Has() wrong")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
}

func TestEveryOpHasBinding(t *testing.T) {
	cfg := Default()
	for op := isa.Op(0); op.Valid(); op++ {
		cls, ok := cfg.Ops[op]
		if !ok {
			t.Errorf("op %v has no binding", op)
			continue
		}
		if cls.Ports.Count() == 0 {
			t.Errorf("op %v has empty port mask", op)
		}
	}
}

func TestDividersAreUnpipelined(t *testing.T) {
	cfg := Default()
	if !cfg.Ops[isa.OpIntDiv].Unpipelined || !cfg.Ops[isa.OpFPDiv].Unpipelined {
		t.Error("dividers must be unpipelined")
	}
	if cfg.Ops[isa.OpIntALU].Unpipelined {
		t.Error("ALU must be pipelined")
	}
}

func TestMemConfigValid(t *testing.T) {
	cfg := Default()
	for _, cc := range []struct {
		name string
		err  error
	}{
		{"L1I", cfg.Mem.L1I.Validate()},
		{"L1D", cfg.Mem.L1D.Validate()},
		{"L2", cfg.Mem.L2.Validate()},
		{"L3", cfg.Mem.L3.Validate()},
	} {
		if cc.err != nil {
			t.Errorf("%s: %v", cc.name, cc.err)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := Default()
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.IssueWidth != orig.IssueWidth || got.ROBSize != orig.ROBSize {
		t.Errorf("scalar fields lost: %+v", got)
	}
	if len(got.Ops) != len(orig.Ops) {
		t.Fatalf("op bindings lost: %d vs %d", len(got.Ops), len(orig.Ops))
	}
	for op, cls := range orig.Ops {
		if got.Ops[op] != cls {
			t.Errorf("op %v binding changed: %+v vs %+v", op, got.Ops[op], cls)
		}
	}
	if got.Mem.DRAM != orig.Mem.DRAM {
		t.Errorf("DRAM config changed")
	}
}

func TestReadConfigRejectsInvalid(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadConfig(strings.NewReader(`{"IssueWidth":0}`)); err == nil {
		t.Error("expected validation error")
	}
	if _, err := ReadConfig(strings.NewReader(`{"NoSuchField":1}`)); err == nil {
		t.Error("expected unknown-field error")
	}
}

func TestByName(t *testing.T) {
	def, err := ByName("default")
	if err != nil || def.Name != Default().Name {
		t.Errorf("ByName(default) = %v, %v", def, err)
	}
	little, err := ByName("little")
	if err != nil || little.IssueWidth != 2 {
		t.Errorf("ByName(little) = %v, %v", little, err)
	}
	if _, err := ByName("/nonexistent/core.json"); err == nil {
		t.Error("expected error for missing file")
	}
	// Round trip through a file.
	path := filepath.Join(t.TempDir(), "core.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := LittleCore().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ByName(path)
	if err != nil || got.Name != "little-2wide" {
		t.Errorf("ByName(file) = %+v, %v", got, err)
	}
}

func TestLittleCoreValidates(t *testing.T) {
	if err := LittleCore().Validate(); err != nil {
		t.Fatalf("little core invalid: %v", err)
	}
}
