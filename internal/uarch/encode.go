package uarch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteJSON serializes the configuration (op bindings included) so custom
// cores can be versioned alongside experiments.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadConfig parses and validates a configuration.
func ReadConfig(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("uarch: decoding config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ByName resolves a built-in configuration name or a JSON file path:
// "default"/"skylake" and "little" are built in; anything else is treated
// as a path.
func ByName(name string) (*Config, error) {
	switch strings.ToLower(name) {
	case "", "default", "skylake", "skylake-sp":
		return Default(), nil
	case "little", "little-core":
		return LittleCore(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("uarch: %q is not a built-in core and not a readable file: %w", name, err)
	}
	defer f.Close()
	return ReadConfig(f)
}
