// Package uarch holds the microarchitecture configuration of the simulated
// CPU core. The default configuration is modeled loosely on the Skylake-SP
// core of the paper's Xeon Gold 6126 test system: a 4-wide out-of-order
// core with a decoded-uop cache (DSB), a legacy decode pipeline (MITE), a
// microcode sequencer (MS), eight execution ports, and a three-level cache
// hierarchy.
package uarch

import (
	"fmt"

	"spire/internal/isa"
	"spire/internal/mem"
)

// PortMask is a bitmask of execution ports (bit i = port i).
type PortMask uint16

// Has reports whether port p is in the mask.
func (m PortMask) Has(p int) bool { return m&(1<<uint(p)) != 0 }

// Count returns the number of ports in the mask.
func (m PortMask) Count() int {
	n := 0
	for p := 0; p < 16; p++ {
		if m.Has(p) {
			n++
		}
	}
	return n
}

// OpClass describes how an op class executes.
type OpClass struct {
	// Ports the op may dispatch to.
	Ports PortMask
	// Latency is the result latency in cycles.
	Latency uint64
	// Unpipelined ops occupy their unit for Latency cycles (e.g. the
	// divider); pipelined ops occupy the port for one cycle.
	Unpipelined bool
}

// Config is the full core configuration.
type Config struct {
	// Name labels the configuration.
	Name string

	// FetchBytes is the number of instruction bytes fetched per cycle;
	// with a fixed 4-byte instruction encoding this bounds fetch width.
	FetchBytes int
	// InstBytes is the fixed encoding size used to map instruction
	// counts to I-cache footprint.
	InstBytes int

	// MITEWidth is the legacy decode pipeline's uops per cycle.
	MITEWidth int
	// DSBWidth is the decoded-uop cache's uops per cycle.
	DSBWidth int
	// MSWidth is the microcode sequencer's uops per cycle.
	MSWidth int
	// MSSwitchPenalty is the front-end bubble, in cycles, paid when
	// switching into the microcode sequencer.
	MSSwitchPenalty uint64
	// IDQCapacity is the instruction decode queue depth (uops).
	IDQCapacity int

	// DSBWindowBytes is the code-window granularity of the decoded-uop
	// cache, and DSBWindows its capacity in windows.
	DSBWindowBytes int
	DSBWindows     int
	DSBWays        int

	// IssueWidth is rename/allocate uops per cycle (the pipeline width
	// that defines TMA slots).
	IssueWidth int
	// RetireWidth is retirement uops per cycle.
	RetireWidth int

	// ROBSize, SchedSize, LoadBufSize, StoreBufSize are back-end buffer
	// capacities in uops.
	ROBSize      int
	SchedSize    int
	LoadBufSize  int
	StoreBufSize int
	// MSHRs bounds outstanding L1D misses (memory-level parallelism).
	MSHRs int

	// NumPorts is the number of execution ports.
	NumPorts int
	// Ops maps each op class to its execution behaviour.
	Ops map[isa.Op]OpClass

	// BranchMispredictPenalty is the recovery bubble in cycles.
	BranchMispredictPenalty uint64
	// GShareBits sizes the branch direction predictor (2^bits
	// counters); BTBEntries sizes the target buffer.
	GShareBits int
	BTBEntries int

	// VecWidthSwitchPenalty is the stall, in cycles, charged when
	// consecutive vector uops change SIMD width (a simplified stand-in
	// for AVX-512 license/frequency transitions).
	VecWidthSwitchPenalty uint64

	// LockLatency is the extra serialization latency of a locked
	// (atomic) memory op.
	LockLatency uint64

	// DTLBEntries and ITLBEntries size the (fully-associative, LRU-ish)
	// translation buffers; PageBytes is the page size and
	// TLBWalkLatency the page-walk cost charged on a miss.
	DTLBEntries    int
	ITLBEntries    int
	PageBytes      int
	TLBWalkLatency uint64

	// Mem is the cache/DRAM configuration.
	Mem mem.HierarchyConfig
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("uarch: non-positive pipeline width")
	}
	if c.MITEWidth <= 0 || c.DSBWidth <= 0 || c.MSWidth <= 0 {
		return fmt.Errorf("uarch: non-positive decode width")
	}
	if c.IDQCapacity < c.IssueWidth {
		return fmt.Errorf("uarch: IDQ capacity %d below issue width %d", c.IDQCapacity, c.IssueWidth)
	}
	if c.ROBSize <= 0 || c.SchedSize <= 0 || c.LoadBufSize <= 0 || c.StoreBufSize <= 0 {
		return fmt.Errorf("uarch: non-positive buffer size")
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("uarch: MSHRs must be positive")
	}
	if c.NumPorts <= 0 || c.NumPorts > 16 {
		return fmt.Errorf("uarch: NumPorts %d out of range", c.NumPorts)
	}
	if c.InstBytes <= 0 || c.FetchBytes < c.InstBytes {
		return fmt.Errorf("uarch: fetch %d / inst %d bytes", c.FetchBytes, c.InstBytes)
	}
	if c.DSBWindowBytes <= 0 || c.DSBWindows <= 0 || c.DSBWays <= 0 {
		return fmt.Errorf("uarch: invalid DSB geometry")
	}
	if c.GShareBits <= 0 || c.GShareBits > 24 || c.BTBEntries <= 0 {
		return fmt.Errorf("uarch: invalid predictor geometry")
	}
	if c.DTLBEntries <= 0 || c.ITLBEntries <= 0 || c.PageBytes <= 0 || c.TLBWalkLatency == 0 {
		return fmt.Errorf("uarch: invalid TLB geometry")
	}
	for op := isa.Op(0); op.Valid(); op++ {
		cls, ok := c.Ops[op]
		if !ok {
			if op == isa.OpNop {
				continue
			}
			return fmt.Errorf("uarch: no port binding for op %v", op)
		}
		if cls.Ports == 0 {
			return fmt.Errorf("uarch: empty port mask for op %v", op)
		}
		for p := 0; p < 16; p++ {
			if cls.Ports.Has(p) && p >= c.NumPorts {
				return fmt.Errorf("uarch: op %v bound to nonexistent port %d", op, p)
			}
		}
		if cls.Latency == 0 {
			return fmt.Errorf("uarch: zero latency for op %v", op)
		}
	}
	return nil
}

// Port mask helpers for the default binding.
const (
	p0 PortMask = 1 << iota
	p1
	p2
	p3
	p4
	p5
	p6
	p7
)

// LittleCore returns a much smaller 2-wide core, in the spirit of an
// efficiency core: no uop cache to speak of, a 2-bit-history predictor,
// shallow buffers, three execution ports, and a single-channel memory
// path. SPIRE is architecture-agnostic, so the same training pipeline
// must work here unchanged — this configuration exists to demonstrate
// (and test) exactly that.
func LittleCore() *Config {
	return &Config{
		Name: "little-2wide",

		FetchBytes: 8,
		InstBytes:  4,

		MITEWidth:       2,
		DSBWidth:        2,
		MSWidth:         1,
		MSSwitchPenalty: 3,
		IDQCapacity:     16,

		// A token 16-window loop buffer stands in for the uop cache.
		DSBWindowBytes: 32,
		DSBWindows:     16,
		DSBWays:        4,

		IssueWidth:  2,
		RetireWidth: 2,

		ROBSize:      32,
		SchedSize:    12,
		LoadBufSize:  10,
		StoreBufSize: 8,
		MSHRs:        2,

		NumPorts: 3,
		Ops: map[isa.Op]OpClass{
			isa.OpNop:        {Ports: p0 | p1, Latency: 1},
			isa.OpIntALU:     {Ports: p0 | p1, Latency: 1},
			isa.OpIntMul:     {Ports: p1, Latency: 4},
			isa.OpIntDiv:     {Ports: p1, Latency: 34, Unpipelined: true},
			isa.OpFPAdd:      {Ports: p1, Latency: 5},
			isa.OpFPMul:      {Ports: p1, Latency: 6},
			isa.OpFPDiv:      {Ports: p1, Latency: 24, Unpipelined: true},
			isa.OpFMA:        {Ports: p1, Latency: 7},
			isa.OpVecALU:     {Ports: p1, Latency: 2},
			isa.OpVecMul:     {Ports: p1, Latency: 6},
			isa.OpVecFMA:     {Ports: p1, Latency: 8},
			isa.OpLoad:       {Ports: p2, Latency: 1},
			isa.OpStore:      {Ports: p2, Latency: 1},
			isa.OpLoadLocked: {Ports: p2, Latency: 1},
			isa.OpBranch:     {Ports: p0, Latency: 1},
			isa.OpMicrocoded: {Ports: p0 | p1, Latency: 3},
		},

		BranchMispredictPenalty: 8,
		GShareBits:              10,
		BTBEntries:              256,

		VecWidthSwitchPenalty: 0,
		LockLatency:           30,

		DTLBEntries:    16,
		ITLBEntries:    16,
		PageBytes:      4096,
		TLBWalkLatency: 40,

		Mem: mem.HierarchyConfig{
			L1I:  mem.CacheConfig{Name: "L1I", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, LatencyCycles: 1},
			L1D:  mem.CacheConfig{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, LatencyCycles: 3},
			L2:   mem.CacheConfig{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 12},
			L3:   mem.CacheConfig{Name: "L3", SizeBytes: 2 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 30},
			DRAM: mem.DRAMConfig{LatencyCycles: 150, BytesPerCycle: 4, LineBytes: 64},
		},
	}
}

// Default returns the Skylake-SP-like reference configuration used by all
// experiments. Callers may copy and tweak it.
func Default() *Config {
	return &Config{
		Name: "skylake-sp-like",

		FetchBytes: 16,
		InstBytes:  4,

		// The legacy pipeline decodes up to 4 uops per cycle on paper,
		// but 16-byte fetch and predecode limits hold it to ~3 in
		// practice — which is what makes the DSB matter.
		MITEWidth:       3,
		DSBWidth:        6,
		MSWidth:         4,
		MSSwitchPenalty: 2,
		IDQCapacity:     64,

		DSBWindowBytes: 32,
		DSBWindows:     512,
		DSBWays:        8,

		IssueWidth:  4,
		RetireWidth: 4,

		ROBSize:      224,
		SchedSize:    97,
		LoadBufSize:  72,
		StoreBufSize: 56,
		MSHRs:        10,

		NumPorts: 8,
		Ops: map[isa.Op]OpClass{
			isa.OpNop:        {Ports: p0 | p1 | p5 | p6, Latency: 1},
			isa.OpIntALU:     {Ports: p0 | p1 | p5 | p6, Latency: 1},
			isa.OpIntMul:     {Ports: p1, Latency: 3},
			isa.OpIntDiv:     {Ports: p0, Latency: 24, Unpipelined: true},
			isa.OpFPAdd:      {Ports: p0 | p1, Latency: 4},
			isa.OpFPMul:      {Ports: p0 | p1, Latency: 4},
			isa.OpFPDiv:      {Ports: p0, Latency: 14, Unpipelined: true},
			isa.OpFMA:        {Ports: p0 | p1, Latency: 4},
			isa.OpVecALU:     {Ports: p0 | p1 | p5, Latency: 1},
			isa.OpVecMul:     {Ports: p0 | p1, Latency: 4},
			isa.OpVecFMA:     {Ports: p0 | p1, Latency: 4},
			isa.OpLoad:       {Ports: p2 | p3, Latency: 1}, // latency comes from the hierarchy
			isa.OpStore:      {Ports: p4, Latency: 1},
			isa.OpLoadLocked: {Ports: p2 | p3, Latency: 1},
			isa.OpBranch:     {Ports: p0 | p6, Latency: 1},
			isa.OpMicrocoded: {Ports: p0 | p1 | p5 | p6, Latency: 2},
		},

		BranchMispredictPenalty: 16,
		GShareBits:              14,
		BTBEntries:              4096,

		VecWidthSwitchPenalty: 6,
		LockLatency:           18,

		DTLBEntries:    64,
		ITLBEntries:    64,
		PageBytes:      4096,
		TLBWalkLatency: 28,

		Mem: mem.HierarchyConfig{
			L1I:  mem.CacheConfig{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1},
			L1D:  mem.CacheConfig{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 4},
			L2:   mem.CacheConfig{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 10},
			L3:   mem.CacheConfig{Name: "L3", SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 26},
			DRAM: mem.DRAMConfig{LatencyCycles: 180, BytesPerCycle: 8, LineBytes: 64},
		},
	}
}
