// Package ingest turns raw performance-counter collections into SPIRE
// datasets without trusting the input: real Linux `perf stat -x, -I <ms>`
// interval CSV (424-event collections full of `<not counted>` rows,
// multiplex-scaling percentages and the occasional garbled line) and the
// simulator's JSON both pass through a tolerant parser that emits
// core.Samples plus structured per-line diagnostics, then through the
// core validation/quarantine layer. Nothing in this package panics on
// hostile input; in lenient mode every anomaly becomes a Diag and the
// surviving samples flow on, in strict mode the first severe anomaly
// aborts with an error naming the offending line.
package ingest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"spire/internal/core"
	"spire/internal/pmu"
)

// Mode selects how anomalies are handled.
type Mode int

const (
	// Lenient records anomalies as diagnostics, quarantines what cannot
	// be used, and keeps going — the default for real-world data.
	Lenient Mode = iota
	// Strict aborts on the first severe anomaly (garbled line, duplicate
	// or out-of-order interval, missing fixed counters, quarantined
	// sample). `<not counted>` / `<not supported>` rows are normal perf
	// output even on healthy runs and never abort.
	Strict
)

// String names the mode.
func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "lenient"
}

// DiagClass classifies one ingestion diagnostic.
type DiagClass uint8

const (
	// DiagGarbled: a line that could not be parsed (truncated, wrong
	// field count, unparsable numbers).
	DiagGarbled DiagClass = iota
	// DiagNotCounted: perf reported `<not counted>` — the event was never
	// scheduled onto a counter during the interval.
	DiagNotCounted
	// DiagNotSupported: perf reported `<not supported>` for the event.
	DiagNotSupported
	// DiagDuplicate: a second row for the same (interval, event) pair;
	// the first row wins.
	DiagDuplicate
	// DiagOutOfOrder: an interval timestamp went backwards; intervals are
	// re-sorted, so this is informational in lenient mode.
	DiagOutOfOrder
	// DiagMissingFixed: an interval lacked the cycles or instructions
	// row, so no sample could be formed from it.
	DiagMissingFixed
	// DiagLowScaling: the event ran for less than Options.MinRunPct of
	// the interval; its scaled value is too extrapolated to trust.
	DiagLowScaling
	// DiagQuarantined: the assembled sample was rejected by the core
	// validation layer (see core.Validate reasons).
	DiagQuarantined
	// DiagUnknownClass: a scheduler event row carried a class this build
	// does not know; the row is skipped and the class is named in
	// Stats.SkippedClasses. Never severe: newer collectors may emit
	// classes an older analyzer has not learned, and that must not
	// abort a strict ingestion.
	DiagUnknownClass

	numDiagClasses
)

// String names the class for summaries.
func (c DiagClass) String() string {
	switch c {
	case DiagGarbled:
		return "garbled"
	case DiagNotCounted:
		return "not-counted"
	case DiagNotSupported:
		return "not-supported"
	case DiagDuplicate:
		return "duplicate"
	case DiagOutOfOrder:
		return "out-of-order"
	case DiagMissingFixed:
		return "missing-fixed"
	case DiagLowScaling:
		return "low-scaling"
	case DiagQuarantined:
		return "quarantined"
	case DiagUnknownClass:
		return "unknown-class"
	}
	return fmt.Sprintf("diag-%d", uint8(c))
}

// Severe reports whether the class aborts a Strict ingestion.
func (c DiagClass) Severe() bool {
	switch c {
	case DiagNotCounted, DiagNotSupported, DiagLowScaling, DiagUnknownClass:
		return false
	}
	return true
}

// Diag is one structured diagnostic tied (where possible) to a source
// line.
type Diag struct {
	// Line is the 1-based source line, or 0 for dataset-level findings.
	Line int `json:"line,omitempty"`
	// Class classifies the anomaly.
	Class DiagClass `json:"-"`
	// ClassName is Class's stable string form.
	ClassName string `json:"class"`
	// Msg describes the specific finding.
	Msg string `json:"msg"`
	// Raw holds the offending input line, truncated for sanity.
	Raw string `json:"raw,omitempty"`
}

// Stats aggregates an ingestion run.
type Stats struct {
	// Lines counts physical input lines (CSV only).
	Lines int `json:"lines"`
	// DataLines counts lines that contributed a counter row.
	DataLines int `json:"dataLines"`
	// Intervals counts distinct collection intervals seen.
	Intervals int `json:"intervals"`
	// Samples counts samples emitted into the dataset (post-quarantine).
	Samples int `json:"samples"`
	// ByClass maps diagnostic class name to occurrence count (complete
	// even when the Diags list is capped).
	ByClass map[string]int `json:"byClass,omitempty"`
	// SchedEvents counts scheduler events emitted into the dataset.
	SchedEvents int `json:"schedEvents,omitempty"`
	// SkippedClasses names each event class that was skipped during
	// ingestion and how many rows it cost — so an operator can see
	// *which* classes this build dropped, not just that some were.
	SkippedClasses map[string]int `json:"skippedClasses,omitempty"`
}

// SevereDiags counts the recorded diagnostics whose class would have
// aborted a strict ingestion. A lenient run that finishes with a
// non-zero severe count produced a usable but degraded dataset — the CLI
// reports this as a partial success (exit code 3) instead of silently
// exiting 0.
func (s Stats) SevereDiags() int {
	n := 0
	for c := DiagClass(0); c < numDiagClasses; c++ {
		if c.Severe() {
			n += s.ByClass[c.String()]
		}
	}
	return n
}

// Result is a completed ingestion.
type Result struct {
	// Dataset holds the surviving samples, ready for core.Train or
	// Ensemble.Estimate.
	Dataset core.Dataset
	// Validation is the core-layer quarantine report over the assembled
	// samples.
	Validation core.ValidationReport
	// Diags lists structured diagnostics, capped at Options.MaxDiags.
	Diags []Diag
	// Stats aggregates counts (never capped).
	Stats Stats
}

// Options configures ingestion.
type Options struct {
	// Mode selects lenient (default) or strict handling.
	Mode Mode
	// CyclesEvent and InstEvent name the fixed-counter rows supplying T
	// and W. Defaults: "cpu_clk_unhalted.thread" and "inst_retired.any";
	// the perf generic aliases ("cycles", "cpu-cycles", "instructions")
	// are always accepted too.
	CyclesEvent string
	InstEvent   string
	// MinRunPct quarantines rows whose counter ran for less than this
	// percentage of the interval (their multiplex-scaled values are
	// mostly extrapolation). Zero keeps every scaled row.
	MinRunPct float64
	// MaxDiags caps the retained diagnostics list; Stats.ByClass stays
	// complete. Zero selects the default of 256; negative retains none.
	MaxDiags int
	// Validate overrides the core validation options; nil uses defaults.
	Validate *core.ValidateOptions
}

func (o *Options) setDefaults() {
	if o.CyclesEvent == "" {
		o.CyclesEvent = "cpu_clk_unhalted.thread"
	}
	if o.InstEvent == "" {
		o.InstEvent = "inst_retired.any"
	}
	if o.MaxDiags == 0 {
		o.MaxDiags = 256
	}
}

// diag records one diagnostic, honoring the retention cap.
func (res *Result) diag(opts Options, d Diag) {
	d.ClassName = d.Class.String()
	if len(d.Raw) > 200 {
		d.Raw = d.Raw[:200] + "..."
	}
	if res.Stats.ByClass == nil {
		res.Stats.ByClass = make(map[string]int)
	}
	res.Stats.ByClass[d.ClassName]++
	if opts.MaxDiags > 0 && len(res.Diags) < opts.MaxDiags {
		res.Diags = append(res.Diags, d)
	}
}

// skipClass records one skipped row of a named event class.
func (s *Stats) skipClass(name string) {
	if s.SkippedClasses == nil {
		s.SkippedClasses = make(map[string]int)
	}
	s.SkippedClasses[name]++
}

// strictErr converts a severe diagnostic into the strict-mode error.
func strictErr(d Diag) error {
	if d.Line > 0 {
		return fmt.Errorf("ingest: line %d: %s: %s", d.Line, d.Class, d.Msg)
	}
	return fmt.Errorf("ingest: %s: %s", d.Class, d.Msg)
}

// Summary renders the warnings digest the CLI prints on stderr.
func (res *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ingested %d samples from %d intervals", res.Stats.Samples, res.Stats.Intervals)
	if res.Validation.Quarantined > 0 {
		fmt.Fprintf(&b, "; %s", res.Validation.Summary())
	}
	if len(res.Stats.ByClass) > 0 {
		fmt.Fprintf(&b, "; diagnostics:")
		for _, c := range diagClassOrder() {
			if n := res.Stats.ByClass[c.String()]; n > 0 {
				fmt.Fprintf(&b, " %s:%d", c, n)
			}
		}
	}
	return b.String()
}

func diagClassOrder() []DiagClass {
	out := make([]DiagClass, 0, numDiagClasses)
	for c := DiagClass(0); c < numDiagClasses; c++ {
		out = append(out, c)
	}
	return out
}

// File ingests path, sniffing the format (JSON vs perf-stat CSV) from the
// first non-blank byte.
func File(path string, opts Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, opts)
}

// Read ingests r, sniffing the format: input starting with '{' or '['
// (after blanks) is treated as simulator JSON, anything else as perf-stat
// interval CSV.
func Read(r io.Reader, opts Options) (*Result, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			// Empty input: an empty CSV, which ingests to zero samples
			// (lenient) or errors below (strict finds no intervals).
			return ReadCSV(br, opts)
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			if _, err := br.ReadByte(); err != nil {
				return ReadCSV(br, opts)
			}
			continue
		case '{', '[':
			return ReadJSON(br, opts)
		default:
			return ReadCSV(br, opts)
		}
	}
}

// validate runs the core quarantine layer over the assembled dataset and
// finalizes the result. In strict mode any quarantined sample aborts.
func (res *Result) validate(assembled core.Dataset, opts Options) error {
	vopts := core.ValidateOptions{}
	if opts.Validate != nil {
		vopts = *opts.Validate
	}
	res.Validation = core.Validate(assembled, vopts)
	for _, q := range res.Validation.Detail {
		res.diag(opts, Diag{
			Class: DiagQuarantined,
			Msg:   fmt.Sprintf("sample %d quarantined (%s): %s", q.Index, q.ReasonName, q.Sample),
		})
	}
	// Keep the count complete even when Detail was capped.
	if extra := res.Validation.Quarantined - len(res.Validation.Detail); extra > 0 {
		if res.Stats.ByClass == nil {
			res.Stats.ByClass = make(map[string]int)
		}
		res.Stats.ByClass[DiagQuarantined.String()] += extra
	}
	if opts.Mode == Strict && res.Validation.Quarantined > 0 {
		msg := res.Validation.Summary()
		if len(res.Validation.Detail) > 0 {
			q := res.Validation.Detail[0]
			msg = fmt.Sprintf("sample %d (%s): %s", q.Index, q.ReasonName, q.Sample)
		}
		return strictErr(Diag{Class: DiagQuarantined, Msg: msg})
	}
	res.Dataset = res.Validation.Clean
	res.Stats.Samples = res.Dataset.Len()
	sched, err := res.screenSched(assembled.Sched, opts)
	if err != nil {
		return err
	}
	res.Dataset.Sched = sched
	res.Stats.SchedEvents = len(res.Dataset.Sched)
	return nil
}

// screenSched validates scheduler events. Structurally broken events
// quarantine like broken samples (severe: aborts strict mode); unknown
// classes are skipped, diagnosed non-severely, and *named* in
// Stats.SkippedClasses so an operator can see which classes this build
// dropped — newer collectors may emit classes an older analyzer has not
// learned, and that must never be fatal.
func (res *Result) screenSched(events []core.SchedEvent, opts Options) ([]core.SchedEvent, error) {
	if len(events) == 0 {
		return nil, nil
	}
	kept := make([]core.SchedEvent, 0, len(events))
	for i, ev := range events {
		if !ev.Valid() {
			d := Diag{Class: DiagQuarantined,
				Msg: fmt.Sprintf("sched event %d malformed: %s", i, ev)}
			res.diag(opts, d)
			res.Stats.skipClass(classOrPlaceholder(ev.Class))
			if opts.Mode == Strict {
				return nil, strictErr(d)
			}
			continue
		}
		if !knownSchedClass(ev.Class) {
			res.diag(opts, Diag{Class: DiagUnknownClass,
				Msg: fmt.Sprintf("sched event %d has unknown class %q; skipped", i, ev.Class)})
			res.Stats.skipClass(ev.Class)
			continue
		}
		kept = append(kept, ev)
	}
	if len(kept) == 0 {
		return nil, nil
	}
	return kept, nil
}

// classOrPlaceholder names a class for the skip ledger, substituting a
// marker for empty strings so the map key is meaningful.
func classOrPlaceholder(class string) string {
	if class == "" {
		return "(empty)"
	}
	return class
}

// knownSchedClass reports whether this build understands the class.
func knownSchedClass(class string) bool {
	_, ok := pmu.LookupSchedClass(class)
	return ok
}
