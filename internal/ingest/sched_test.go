package ingest

import (
	"reflect"
	"strings"
	"testing"

	"spire/internal/core"
)

const schedCSV = `1.000000000,12345,,cpu_clk_unhalted.thread,1000,100.00
1.000000000,4000,,inst_retired.any,1000,100.00
1.000000000,77,,longest_lat_cache.miss,1000,100.00
1.000000000,sched.switch_in,100,0,1,,-1
1.000000000,sched.block_lock,250,0,1,queue,2
2.000000000,23456,,cpu_clk_unhalted.thread,1000,100.00
2.000000000,4100,,inst_retired.any,1000,100.00
2.000000000,sched.unblock_lock,1300,0,0,queue,2
`

func TestReadCSVSchedRows(t *testing.T) {
	res, err := ReadCSV(strings.NewReader(schedCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Dataset.Sched); got != 3 {
		t.Fatalf("sched events = %d, want 3; diags %+v", got, res.Diags)
	}
	want := core.SchedEvent{Time: 250, Class: "sched.block_lock", Thread: 0, Hart: 1, Obj: "queue", Waker: 2, Window: 1}
	if res.Dataset.Sched[1] != want {
		t.Fatalf("event = %+v, want %+v", res.Dataset.Sched[1], want)
	}
	if res.Dataset.Sched[2].Window != 2 {
		t.Fatalf("second-interval event window = %d, want 2", res.Dataset.Sched[2].Window)
	}
	if res.Stats.SchedEvents != 3 {
		t.Fatalf("stats.SchedEvents = %d", res.Stats.SchedEvents)
	}
	if res.Dataset.Len() != 1 {
		t.Fatalf("samples = %d, want 1", res.Dataset.Len())
	}
}

func TestReadCSVUnknownSchedClassNamedInStats(t *testing.T) {
	// Regression: unknown classes must be *named* in Stats.SkippedClasses,
	// not just counted, and must not abort strict mode.
	input := schedCSV +
		"2.000000000,sched.softirq_entry,1500,3,0,,-1\n" +
		"2.000000000,sched.softirq_entry,1600,3,0,,-1\n" +
		"2.000000000,sched.numa_migrate,1700,4,0,,-1\n"
	for _, mode := range []Mode{Lenient, Strict} {
		res, err := ReadCSV(strings.NewReader(input), Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: unknown class aborted ingestion: %v", mode, err)
		}
		want := map[string]int{"sched.softirq_entry": 2, "sched.numa_migrate": 1}
		if !reflect.DeepEqual(res.Stats.SkippedClasses, want) {
			t.Fatalf("%v: SkippedClasses = %v, want %v", mode, res.Stats.SkippedClasses, want)
		}
		if res.Stats.ByClass[DiagUnknownClass.String()] != 3 {
			t.Fatalf("%v: unknown-class count = %d, want 3", mode, res.Stats.ByClass[DiagUnknownClass.String()])
		}
		if got := len(res.Dataset.Sched); got != 3 {
			t.Fatalf("%v: kept events = %d, want 3", mode, got)
		}
		// Non-severe: a lenient run with only unknown-class diags is not
		// "degraded".
		if res.Stats.SevereDiags() != 0 {
			t.Fatalf("%v: severe diags = %d, want 0", mode, res.Stats.SevereDiags())
		}
	}
}

func TestReadCSVGarbledSchedRow(t *testing.T) {
	input := "1.0,sched.switch_in,abc,0,0,,-1\n" + schedCSV
	res, err := ReadCSV(strings.NewReader(input), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ByClass[DiagGarbled.String()] != 1 {
		t.Fatalf("garbled = %d, want 1", res.Stats.ByClass[DiagGarbled.String()])
	}
	if _, err := ReadCSV(strings.NewReader(input), Options{Mode: Strict}); err == nil {
		t.Fatal("strict mode accepted garbled sched row")
	}
}

func TestReadCSVSchedOnlyInterval(t *testing.T) {
	// An interval carrying only scheduler events forms a window without
	// any missing-fixed diagnostic.
	input := "1.000000000,sched.switch_in,100,0,0,,-1\n" +
		"1.000000000,sched.switch_out,900,0,0,,-1\n"
	res, err := ReadCSV(strings.NewReader(input), Options{Mode: Strict})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Sched) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Dataset.Sched))
	}
	if res.Dataset.Sched[0].Window != 1 {
		t.Fatalf("window = %d, want 1", res.Dataset.Sched[0].Window)
	}
	if n := res.Stats.ByClass[DiagMissingFixed.String()]; n != 0 {
		t.Fatalf("missing-fixed diags = %d, want 0", n)
	}
}

func TestIncrementalSchedMatchesBatch(t *testing.T) {
	// The streaming path must produce the same events with the same
	// window tags as ReadCSV, in any chunking.
	batch, err := ReadCSV(strings.NewReader(schedCSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, len(schedCSV)} {
		in := NewIncremental(Options{})
		var got []core.SchedEvent
		data := []byte(schedCSV)
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			ivs, err := in.Feed(data[off:end])
			if err != nil {
				t.Fatal(err)
			}
			for _, iv := range ivs {
				got = append(got, iv.Sched...)
			}
		}
		ivs, err := in.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, iv := range ivs {
			got = append(got, iv.Sched...)
		}
		if !reflect.DeepEqual(got, batch.Dataset.Sched) {
			t.Fatalf("chunk %d: stream sched %+v != batch %+v", chunk, got, batch.Dataset.Sched)
		}
		if st := in.Stats(); st.SchedEvents != batch.Stats.SchedEvents {
			t.Fatalf("chunk %d: stream SchedEvents %d != batch %d", chunk, st.SchedEvents, batch.Stats.SchedEvents)
		}
	}
}

func TestIncrementalSkippedClassesSnapshotCopied(t *testing.T) {
	in := NewIncremental(Options{})
	if _, err := in.Feed([]byte("1.0,sched.bogus_class,5,0,0,,-1\n")); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	st.SkippedClasses["sched.bogus_class"] = 99
	if in.Stats().SkippedClasses["sched.bogus_class"] != 1 {
		t.Fatal("Stats snapshot aliases the live SkippedClasses map")
	}
}

func TestReadJSONSchedRoundTrip(t *testing.T) {
	// JSON datasets carry sched events through validation; unknown
	// classes are screened and named there too.
	var d core.Dataset
	d.Add(core.Sample{Metric: "longest_lat_cache.miss", T: 100, W: 50, M: 3, Window: 1})
	d.AddSched(
		core.SchedEvent{Time: 10, Class: "sched.switch_in", Thread: 0, Waker: -1, Window: 1},
		core.SchedEvent{Time: 20, Class: "sched.alien", Thread: 1, Waker: -1, Window: 1},
	)
	var sb strings.Builder
	if err := core.WriteDataset(&sb, d); err != nil {
		t.Fatal(err)
	}
	res, err := Read(strings.NewReader(sb.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Sched) != 1 || res.Dataset.Sched[0].Class != "sched.switch_in" {
		t.Fatalf("sched = %+v", res.Dataset.Sched)
	}
	if res.Stats.SkippedClasses["sched.alien"] != 1 {
		t.Fatalf("SkippedClasses = %v", res.Stats.SkippedClasses)
	}
}

func TestReadJSONMalformedSchedStrict(t *testing.T) {
	var d core.Dataset
	d.Add(core.Sample{Metric: "x", T: 100, W: 50, M: 3})
	d.AddSched(core.SchedEvent{Time: -5, Class: "sched.switch_in", Thread: 0, Waker: -1})
	var sb strings.Builder
	if err := core.WriteDataset(&sb, d); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader(sb.String()), Options{Mode: Strict}); err == nil {
		t.Fatal("strict mode accepted malformed sched event")
	}
	res, err := Read(strings.NewReader(sb.String()), Options{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Sched) != 0 {
		t.Fatalf("malformed event kept: %+v", res.Dataset.Sched)
	}
}
