package ingest

import (
	"fmt"
	"strings"

	"spire/internal/core"
)

// This file is the streaming half of the ingestion pipeline: the same
// tolerant `perf stat -x, -I` CSV semantics as ReadCSV, but fed one
// arbitrary byte chunk at a time. Two pieces compose:
//
//   - LineSplitter reassembles physical lines across chunk boundaries, so
//     a read that ends mid-line never produces a spurious "garbled"
//     diagnostic — the partial tail is buffered until the rest arrives.
//   - Incremental parses those lines row by row and emits each collection
//     interval as soon as the next interval's first row proves it
//     complete (perf prints all of an interval's rows consecutively).
//
// Feeding the same bytes in any chunking — byte by byte, line by line, or
// all at once — produces identical intervals, identical diagnostics and
// identical stats (property-checked by FuzzStreamFeed). Unlike ReadCSV,
// Incremental cannot re-sort intervals globally: timestamps that go
// backwards are diagnosed (DiagOutOfOrder) and the intervals are emitted
// in arrival order, which is what a live monitor wants anyway.

// maxLineBytes bounds one physical line. ReadCSV's scanner aborts the
// whole run beyond its 1 MiB buffer; the streaming path instead diagnoses
// the oversized line as garbled and keeps going — a live feed must never
// be killed by one corrupt line.
const maxLineBytes = 1 << 20

// LineSplitter splits a byte stream into physical lines across arbitrary
// chunk boundaries. A trailing fragment without a newline is buffered
// until the next Feed (or Flush) completes it. Lines longer than
// maxLineBytes are truncated to a single oversized-line marker rather
// than buffered without bound.
type LineSplitter struct {
	buf      []byte
	dropping bool // current line exceeded maxLineBytes; discard to newline
	overran  bool // report the oversized line once, at emission
}

// Feed appends chunk and invokes emit for every line it completes, in
// order, without the trailing newline. The second emit argument reports
// whether the line overran the length bound (its content is truncated).
func (ls *LineSplitter) Feed(chunk []byte, emit func(line []byte, overran bool)) {
	for len(chunk) > 0 {
		nl := -1
		for i, b := range chunk {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			ls.take(chunk)
			return
		}
		ls.take(chunk[:nl])
		ls.emitLine(emit)
		chunk = chunk[nl+1:]
	}
}

// Flush emits the final unterminated line, if any.
func (ls *LineSplitter) Flush(emit func(line []byte, overran bool)) {
	if len(ls.buf) > 0 || ls.overran {
		ls.emitLine(emit)
	}
}

// Pending reports whether a partial line is buffered.
func (ls *LineSplitter) Pending() bool { return len(ls.buf) > 0 || ls.overran }

// take buffers part of the current line, enforcing the length bound.
func (ls *LineSplitter) take(part []byte) {
	if ls.dropping {
		return
	}
	if len(ls.buf)+len(part) > maxLineBytes {
		room := maxLineBytes - len(ls.buf)
		if room > 0 {
			ls.buf = append(ls.buf, part[:room]...)
		}
		ls.dropping = true
		ls.overran = true
		return
	}
	ls.buf = append(ls.buf, part...)
}

// emitLine hands the buffered line to emit and resets for the next one.
// A trailing '\r' (CRLF input) is stripped.
func (ls *LineSplitter) emitLine(emit func(line []byte, overran bool)) {
	line := ls.buf
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	emit(line, ls.overran)
	ls.buf = ls.buf[:0]
	ls.dropping = false
	ls.overran = false
}

// Interval is one completed collection interval: the assembled,
// per-interval-validated samples ready for windowed estimation. Window
// numbers completed intervals 1, 2, 3, ... in emission order (matching
// ReadCSV's numbering for in-order input); Samples may be empty when the
// interval carried only the fixed-counter rows or everything was
// quarantined.
type Interval struct {
	// TS is the perf interval timestamp in seconds.
	TS float64
	// Window is the 1-based interval sequence number; strictly increasing
	// across one Incremental's lifetime.
	Window int
	// Samples holds the surviving samples, tagged with Window.
	Samples []core.Sample
	// Sched holds the interval's scheduler events, tagged with Window.
	Sched []core.SchedEvent
	// Quarantined counts samples this interval lost to validation.
	Quarantined int
}

// Incremental is the resumable counterpart of ReadCSV: feed it `perf
// stat -x, -I` CSV in arbitrary chunks and collect completed intervals as
// they close. All of ReadCSV's tolerant-parsing behavior applies — the
// same row grammar, the same diagnostics, the same per-sample validation
// — except that intervals are emitted in arrival order (no global
// re-sort) and an oversized line becomes a diagnostic instead of a fatal
// read error.
//
// Not safe for concurrent use; callers serialize Feed/Close.
type Incremental struct {
	opts     Options
	cyclesEv string
	instEv   string

	split  LineSplitter
	res    Result // diagnostics + stats accumulator (Dataset unused)
	cur    *interval
	window int
	lineNo int
	lastTS float64
	haveTS bool

	err    error // sticky strict-mode abort
	closed bool
}

// NewIncremental returns a streaming parser with the same options as
// ReadCSV. The Validate options apply per interval, so the dataset-wide
// throughput-outlier screen degenerates to a no-op (every sample in one
// interval shares the same period); structural checks (NaN/Inf, negative
// time, counter wraps) are enforced exactly as in batch mode.
func NewIncremental(opts Options) *Incremental {
	opts.setDefaults()
	return &Incremental{
		opts:     opts,
		cyclesEv: CanonicalEvent(opts.CyclesEvent),
		instEv:   CanonicalEvent(opts.InstEvent),
	}
}

// Feed consumes one chunk and returns the intervals it completed, in
// order. In lenient mode the error is always nil; in strict mode the
// first severe anomaly aborts, the error is sticky, and any intervals
// completed before the anomaly are still returned.
func (in *Incremental) Feed(chunk []byte) ([]Interval, error) {
	if in.err != nil {
		return nil, in.err
	}
	if in.closed {
		return nil, fmt.Errorf("ingest: feed after close")
	}
	var out []Interval
	in.split.Feed(chunk, func(line []byte, overran bool) {
		if in.err != nil {
			return
		}
		if iv := in.processLine(string(line), overran); iv != nil {
			out = append(out, *iv)
		}
	})
	return out, in.err
}

// Close flushes the trailing partial line and the open interval,
// returning whatever completes. Further Feeds error.
func (in *Incremental) Close() ([]Interval, error) {
	if in.err != nil {
		return nil, in.err
	}
	if in.closed {
		return nil, nil
	}
	in.closed = true
	var out []Interval
	in.split.Flush(func(line []byte, overran bool) {
		if in.err != nil {
			return
		}
		if iv := in.processLine(string(line), overran); iv != nil {
			out = append(out, *iv)
		}
	})
	if in.err != nil {
		return out, in.err
	}
	if iv := in.completeCurrent(); iv != nil {
		out = append(out, *iv)
	}
	return out, in.err
}

// Stats returns a snapshot of the cumulative ingestion statistics so
// far. ByClass is copied, so the snapshot stays stable (and safe to read
// from other goroutines) while feeding continues.
func (in *Incremental) Stats() Stats {
	st := in.res.Stats
	if st.ByClass != nil {
		cp := make(map[string]int, len(st.ByClass))
		for k, v := range st.ByClass {
			cp[k] = v
		}
		st.ByClass = cp
	}
	if st.SkippedClasses != nil {
		cp := make(map[string]int, len(st.SkippedClasses))
		for k, v := range st.SkippedClasses {
			cp[k] = v
		}
		st.SkippedClasses = cp
	}
	return st
}

// TakeDiags drains and returns the retained diagnostics. The retention
// cap (Options.MaxDiags) applies between drains, so a long-running stream
// that drains regularly never loses diagnostics to the cap; Stats.ByClass
// counts stay complete either way.
func (in *Incremental) TakeDiags() []Diag {
	out := in.res.Diags
	in.res.Diags = nil
	return out
}

// processLine mirrors ReadCSV's per-line handling. It returns the
// interval the line completed, if any.
func (in *Incremental) processLine(raw string, overran bool) *Interval {
	in.lineNo++
	in.res.Stats.Lines++
	if overran {
		in.diag(Diag{Line: in.lineNo, Class: DiagGarbled, Raw: raw,
			Msg: fmt.Sprintf("line exceeds %d bytes; skipped", maxLineBytes)})
		return nil
	}
	line := strings.TrimSpace(raw)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	fields := splitFields(line)
	if isSchedRow(fields) {
		return in.processSchedLine(fields, line)
	}
	rw, d := parseRowFields(fields, line, in.lineNo)
	if d != nil {
		in.diag(*d)
		return nil
	}
	in.res.Stats.DataLines++
	if rw.pct < in.opts.MinRunPct {
		in.diag(Diag{Line: in.lineNo, Class: DiagLowScaling, Raw: raw,
			Msg: fmt.Sprintf("%s ran %.2f%% of the interval (< %.2f%%)", rw.event, rw.pct, in.opts.MinRunPct)})
		return nil
	}

	var completed *Interval
	if in.cur == nil || rw.ts != in.cur.ts {
		completed = in.completeCurrent()
		if in.err != nil {
			return completed
		}
		if in.haveTS && rw.ts < in.lastTS {
			d := Diag{Line: in.lineNo, Class: DiagOutOfOrder, Raw: raw,
				Msg: fmt.Sprintf("interval %.9f arrived after %.9f; emitting in arrival order", rw.ts, in.lastTS)}
			in.diag(d)
			if in.err != nil {
				return completed
			}
		}
		if rw.ts > in.lastTS {
			in.lastTS = rw.ts
		}
		in.haveTS = true
		in.cur = &interval{ts: rw.ts, seen: make(map[string]bool)}
	}
	if in.cur.seen[rw.event] {
		in.diag(Diag{Line: in.lineNo, Class: DiagDuplicate, Raw: raw,
			Msg: fmt.Sprintf("duplicate row for event %s in interval %.9f; keeping the first", rw.event, rw.ts)})
		return completed
	}
	in.cur.seen[rw.event] = true
	in.cur.rows = append(in.cur.rows, rw)
	in.cur.lines = append(in.cur.lines, in.lineNo)
	return completed
}

// processSchedLine mirrors ReadCSV's scheduler-row handling for the
// streaming path, including interval grouping by timestamp.
func (in *Incremental) processSchedLine(fields []string, line string) *Interval {
	sr, d := parseSchedFields(fields, line, in.lineNo)
	if d != nil {
		if d.Class == DiagUnknownClass {
			in.res.Stats.skipClass(classOrPlaceholder(sr.ev.Class))
		}
		in.diag(*d)
		return nil
	}
	in.res.Stats.DataLines++
	var completed *Interval
	if in.cur == nil || sr.ts != in.cur.ts {
		completed = in.completeCurrent()
		if in.err != nil {
			return completed
		}
		if in.haveTS && sr.ts < in.lastTS {
			in.diag(Diag{Line: in.lineNo, Class: DiagOutOfOrder, Raw: line,
				Msg: fmt.Sprintf("interval %.9f arrived after %.9f; emitting in arrival order", sr.ts, in.lastTS)})
			if in.err != nil {
				return completed
			}
		}
		if sr.ts > in.lastTS {
			in.lastTS = sr.ts
		}
		in.haveTS = true
		in.cur = &interval{ts: sr.ts, seen: make(map[string]bool)}
	}
	in.cur.sched = append(in.cur.sched, sr.ev)
	return completed
}

// completeCurrent assembles and validates the open interval, exactly as
// ReadCSV's assembly loop does for one timestamp group.
func (in *Incremental) completeCurrent() *Interval {
	iv := in.cur
	in.cur = nil
	if iv == nil {
		return nil
	}
	in.res.Stats.Intervals++
	var T, W float64
	haveT, haveW := false, false
	for _, rw := range iv.rows {
		switch rw.event {
		case in.cyclesEv:
			T, haveT = rw.value, true
		case in.instEv:
			W, haveW = rw.value, true
		}
	}
	haveFixed := haveT && haveW
	if !haveFixed && len(iv.rows) > 0 {
		missing := in.cyclesEv
		if haveT {
			missing = in.instEv
		}
		line := 0
		if len(iv.lines) > 0 {
			line = iv.lines[0]
		}
		in.diag(Diag{Class: DiagMissingFixed, Line: line,
			Msg: fmt.Sprintf("interval %.9f has no %s row; dropping its %d rows", iv.ts, missing, len(iv.rows))})
		if in.err != nil {
			return nil
		}
	}
	// Same window rule as ReadCSV: a full counter set or scheduler
	// events make a window; counter rows missing their fixed set drop.
	if !haveFixed && len(iv.sched) == 0 {
		return nil
	}
	in.window++
	var assembled core.Dataset
	if haveFixed {
		for _, rw := range iv.rows {
			if rw.event == in.cyclesEv || rw.event == in.instEv {
				continue
			}
			assembled.Add(core.Sample{
				Metric: rw.event,
				T:      T,
				W:      W,
				M:      rw.value,
				Window: in.window,
			})
		}
	}
	sched := iv.sched
	for i := range sched {
		sched[i].Window = in.window
	}

	vopts := core.ValidateOptions{}
	if in.opts.Validate != nil {
		vopts = *in.opts.Validate
	}
	rep := core.Validate(assembled, vopts)
	for _, q := range rep.Detail {
		in.diag(Diag{Class: DiagQuarantined,
			Msg: fmt.Sprintf("sample %d quarantined (%s): %s", q.Index, q.ReasonName, q.Sample)})
		if in.err != nil {
			return nil
		}
	}
	// Keep the count complete even when Detail was capped.
	if extra := rep.Quarantined - len(rep.Detail); extra > 0 {
		if in.res.Stats.ByClass == nil {
			in.res.Stats.ByClass = make(map[string]int)
		}
		in.res.Stats.ByClass[DiagQuarantined.String()] += extra
		if in.opts.Mode == Strict {
			in.err = strictErr(Diag{Class: DiagQuarantined, Msg: rep.Summary()})
			return nil
		}
	}
	in.res.Stats.Samples += rep.Clean.Len()
	in.res.Stats.SchedEvents += len(sched)
	return &Interval{
		TS:          iv.ts,
		Window:      in.window,
		Samples:     rep.Clean.Samples,
		Sched:       sched,
		Quarantined: rep.Quarantined,
	}
}

// diag records one diagnostic and arms the strict-mode abort when it is
// severe.
func (in *Incremental) diag(d Diag) {
	in.res.diag(in.opts, d)
	if in.opts.Mode == Strict && d.Class.Severe() {
		in.err = strictErr(d)
	}
}
