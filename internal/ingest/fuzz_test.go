package ingest

import (
	"strings"
	"testing"
)

// FuzzPerfStatCSV drives the tolerant parser with arbitrary input in both
// modes and asserts the robustness contract: no panic, internally
// consistent accounting, and only structurally valid samples in the
// surviving dataset. Seed corpus entries cover the real `perf stat -x, -I`
// row shapes (see also testdata/fuzz/FuzzPerfStatCSV).
func FuzzPerfStatCSV(f *testing.F) {
	seeds := []string{
		"1.000107616,29876,,longest_lat_cache.miss,4512678925,24.53,,\n",
		"1.000107616,3200000000,,cycles,1000000000,100.00,,\n1.000107616,4800000000,,instructions,1000000000,100.00,,\n1.000107616,29876,,idq.dsb_uops,250000000,25.00,,\n",
		"2.000362148,<not counted>,,idq.dsb_uops,0,0.00,,\n",
		"3.000500000,<not supported>,,topdown.slots,0,100.00,,\n",
		"# started on Wed Aug  5 14:02:11 2026\n",
		"1,000107616;3200000000;;cycles;1000000000;100,00;;\n",
		"1,000107616,123456789,,longest_lat_cache.miss,249812345,24,85,,\n",
		"14.000293847,19456\n",
		"perf: interrupted by signal, resuming\n",
		"1.000000001,3200000000,,cpu/inst_retired.any/,1000000000,100.00,,\n",
		"9.000000009,18446744073709551615,,cycle_activity.stalls_total,1,0.01,,\n",
		"-1.5,-300,,weird.event,-7,-3.00,,\n",
		"",
		"\x00\xff\xfe,,,,\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, mode := range []Mode{Lenient, Strict} {
			res, err := ReadCSV(strings.NewReader(input), Options{Mode: mode})
			if res == nil {
				t.Fatal("nil result")
			}
			if mode == Strict && err != nil {
				continue // strict rejection is a legal outcome
			}
			if err != nil {
				// The only lenient-mode error is an input read failure
				// (e.g. a line beyond the scanner's 1 MiB cap).
				if strings.Contains(err.Error(), "reading input") {
					continue
				}
				t.Fatalf("lenient mode errored on parseable-or-skippable input: %v", err)
			}
			if res.Stats.Samples != res.Dataset.Len() {
				t.Fatalf("Stats.Samples %d != dataset len %d", res.Stats.Samples, res.Dataset.Len())
			}
			for _, s := range res.Dataset.Samples {
				if !s.Valid() {
					t.Fatalf("invalid sample survived ingestion: %s", s)
				}
				if s.Window <= 0 {
					t.Fatalf("sample without window tag: %s", s)
				}
			}
			total := 0
			for _, n := range res.Stats.ByClass {
				total += n
			}
			if len(res.Diags) > total {
				t.Fatalf("retained %d diags but counted %d", len(res.Diags), total)
			}
		}
	})
}
