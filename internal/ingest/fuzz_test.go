package ingest

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzPerfStatCSV drives the tolerant parser with arbitrary input in both
// modes and asserts the robustness contract: no panic, internally
// consistent accounting, and only structurally valid samples in the
// surviving dataset. Seed corpus entries cover the real `perf stat -x, -I`
// row shapes (see also testdata/fuzz/FuzzPerfStatCSV).
func FuzzPerfStatCSV(f *testing.F) {
	seeds := []string{
		"1.000107616,29876,,longest_lat_cache.miss,4512678925,24.53,,\n",
		"1.000107616,3200000000,,cycles,1000000000,100.00,,\n1.000107616,4800000000,,instructions,1000000000,100.00,,\n1.000107616,29876,,idq.dsb_uops,250000000,25.00,,\n",
		"2.000362148,<not counted>,,idq.dsb_uops,0,0.00,,\n",
		"3.000500000,<not supported>,,topdown.slots,0,100.00,,\n",
		"# started on Wed Aug  5 14:02:11 2026\n",
		"1,000107616;3200000000;;cycles;1000000000;100,00;;\n",
		"1,000107616,123456789,,longest_lat_cache.miss,249812345,24,85,,\n",
		"14.000293847,19456\n",
		"perf: interrupted by signal, resuming\n",
		"1.000000001,3200000000,,cpu/inst_retired.any/,1000000000,100.00,,\n",
		"9.000000009,18446744073709551615,,cycle_activity.stalls_total,1,0.01,,\n",
		"-1.5,-300,,weird.event,-7,-3.00,,\n",
		"",
		"\x00\xff\xfe,,,,\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, mode := range []Mode{Lenient, Strict} {
			res, err := ReadCSV(strings.NewReader(input), Options{Mode: mode})
			if res == nil {
				t.Fatal("nil result")
			}
			if mode == Strict && err != nil {
				continue // strict rejection is a legal outcome
			}
			if err != nil {
				// The only lenient-mode error is an input read failure
				// (e.g. a line beyond the scanner's 1 MiB cap).
				if strings.Contains(err.Error(), "reading input") {
					continue
				}
				t.Fatalf("lenient mode errored on parseable-or-skippable input: %v", err)
			}
			if res.Stats.Samples != res.Dataset.Len() {
				t.Fatalf("Stats.Samples %d != dataset len %d", res.Stats.Samples, res.Dataset.Len())
			}
			for _, s := range res.Dataset.Samples {
				if !s.Valid() {
					t.Fatalf("invalid sample survived ingestion: %s", s)
				}
				if s.Window <= 0 {
					t.Fatalf("sample without window tag: %s", s)
				}
			}
			total := 0
			for _, n := range res.Stats.ByClass {
				total += n
			}
			if len(res.Diags) > total {
				t.Fatalf("retained %d diags but counted %d", len(res.Diags), total)
			}
		}
	})
}

// incrementalRun feeds input through one Incremental using the chunk
// boundaries drawn from seed (0 = one whole chunk) and returns everything
// observable: intervals, retained diags, stats, and the final error.
func incrementalRun(input []byte, seed uint64, mode Mode) ([]Interval, []Diag, Stats, error) {
	in := NewIncremental(Options{Mode: mode})
	var ivs []Interval
	var diags []Diag
	rest := input
	for len(rest) > 0 {
		n := len(rest)
		if seed != 0 {
			// xorshift-derived chunk length in [1, 17].
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			n = int(seed%17) + 1
			if n > len(rest) {
				n = len(rest)
			}
		}
		out, err := in.Feed(rest[:n])
		ivs = append(ivs, out...)
		diags = append(diags, in.TakeDiags()...)
		if err != nil {
			return ivs, diags, in.Stats(), err
		}
		rest = rest[n:]
	}
	out, err := in.Close()
	ivs = append(ivs, out...)
	diags = append(diags, in.TakeDiags()...)
	return ivs, diags, in.Stats(), err
}

// FuzzStreamFeed is the chunk-boundary invariance gate for the streaming
// parser: feeding arbitrary bytes split at arbitrary boundaries —
// including mid-CSV-line — must produce exactly the intervals, the
// diagnostics, the stats and the error that feeding the same bytes as one
// whole chunk produces, in both modes.
func FuzzStreamFeed(f *testing.F) {
	seeds := []string{
		"1.000107616,3200000000,,cycles,1000000000,100.00,,\n1.000107616,4800000000,,instructions,1000000000,100.00,,\n1.000107616,29876,,idq.dsb_uops,250000000,25.00,,\n2.000362148,3200000000,,cycles,1000000000,100.00,,\n",
		"1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n1.0,10,,llc.miss,1,25.00,,\n2.0,100,,cycles,1,100.00,,\n2.0,50,,instructions,1,100.00,,\n2.0,20,,llc.miss,1,25.00,,\n",
		"2.000362148,<not counted>,,idq.dsb_uops,0,0.00,,\n",
		"# comment\r\n1,000107616;3200000000;;cycles;1000000000;100,00;;\r\n",
		"garbage line without separators\n5.0,1,,cycles,1\n",
		"3.0,100,,cycles,1,100.00,,\n1.0,100,,cycles,1,100.00,,\n",
		"",
		"\x00\xff\xfe,,,,\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s), uint64(12345))
	}
	f.Fuzz(func(t *testing.T, input []byte, seed uint64) {
		for _, mode := range []Mode{Lenient, Strict} {
			wantIvs, wantDiags, wantStats, wantErr := incrementalRun(input, 0, mode)
			gotIvs, gotDiags, gotStats, gotErr := incrementalRun(input, seed|1, mode)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("mode %s: error mismatch: whole=%v chunked=%v", mode, wantErr, gotErr)
			}
			if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Fatalf("mode %s: different errors: whole=%v chunked=%v", mode, wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantIvs, gotIvs) {
				t.Fatalf("mode %s: intervals diverge across chunkings:\nwhole:   %+v\nchunked: %+v", mode, wantIvs, gotIvs)
			}
			if !reflect.DeepEqual(wantDiags, gotDiags) {
				t.Fatalf("mode %s: diagnostics diverge across chunkings:\nwhole:   %+v\nchunked: %+v", mode, wantDiags, gotDiags)
			}
			if !reflect.DeepEqual(wantStats, gotStats) {
				t.Fatalf("mode %s: stats diverge across chunkings:\nwhole:   %+v\nchunked: %+v", mode, wantStats, gotStats)
			}
			if mode == Lenient {
				for _, iv := range gotIvs {
					for _, s := range iv.Samples {
						if !s.Valid() {
							t.Fatalf("invalid sample survived streaming ingestion: %s", s)
						}
					}
				}
			}
		}
	})
}
