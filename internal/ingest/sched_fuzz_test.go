package ingest

import (
	"strings"
	"testing"
)

// FuzzSchedEventParse drives scheduler-event row parsing with arbitrary
// CSV input and asserts the tolerant-ingestion contract: no panic, only
// structurally valid events of known classes survive into the dataset,
// the accounting adds up, and SkippedClasses names exactly the unknown
// "sched.*" classes — in both modes (unknown classes are never fatal,
// even strict).
func FuzzSchedEventParse(f *testing.F) {
	seeds := []string{
		"1.000000000,sched.switch_in,100,0,1,,-1\n",
		"1.000107616,sched.block_lock,48123,3,1,queue,0\n1.000107616,sched.unblock_lock,48900,3,1,queue,-1\n1.000107616,sched.switch_in,48900,3,1,,-1\n",
		"1.0,sched.softirq_entry,10,0,0,,-1\n1.0,sched.softirq_entry,20,0,0,,-1\n1.0,sched.numa_migrate,30,1,0,,-1\n",
		"1.0,sched.switch_in,not-a-number,0,0,,-1\n",
		"1.0,sched.switch_in,100,0\n",
		"2.0,sched.wakeup,10,1,0,,0\n2.0,sched.switch_in,12,1,0,,-1\n2.0,sched.switch_out,40,1,0,,-1\n",
		"1.0,3200000000,,cycles,1000000000,100.00,,\n1.0,sched.switch_in,5,0,0,,-1\n",
		"1,0;sched.switch_in;5;0;0;;-1\n",
		"1.0,sched.,x,y,z,,\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, mode := range []Mode{Lenient, Strict} {
			res, err := ReadCSV(strings.NewReader(input), Options{Mode: mode})
			if res == nil {
				t.Fatal("nil result")
			}
			if err != nil {
				// Strict rejection and lenient read failures are legal; the
				// invariants below only bind on accepted input.
				continue
			}
			if res.Stats.SchedEvents != len(res.Dataset.Sched) {
				t.Fatalf("mode %s: Stats.SchedEvents %d != %d emitted events",
					mode, res.Stats.SchedEvents, len(res.Dataset.Sched))
			}
			for _, ev := range res.Dataset.Sched {
				if !ev.Valid() {
					t.Fatalf("mode %s: invalid sched event survived ingestion: %s", mode, ev)
				}
				if !knownSchedClass(ev.Class) {
					t.Fatalf("mode %s: unknown class %q survived ingestion", mode, ev.Class)
				}
				if ev.Window <= 0 {
					t.Fatalf("mode %s: sched event without window tag: %s", mode, ev)
				}
			}
			for class, n := range res.Stats.SkippedClasses {
				if !strings.HasPrefix(class, "sched.") {
					t.Fatalf("mode %s: skipped class %q is not a sched class", mode, class)
				}
				if knownSchedClass(class) {
					t.Fatalf("mode %s: known class %q reported as skipped", mode, class)
				}
				if n <= 0 {
					t.Fatalf("mode %s: skipped class %q with count %d", mode, class, n)
				}
			}
		}
	})
}
