package ingest

import (
	"fmt"
	"io"

	"spire/internal/core"
)

// ReadJSON ingests a simulator-format JSON dataset (core.WriteDataset
// output) through the same validation/quarantine layer as the CSV path. A
// malformed document is an error in both modes — there is no meaningful
// partial recovery from broken JSON — but per-sample anomalies quarantine
// (lenient) or abort (strict) exactly like CSV rows.
func ReadJSON(r io.Reader, opts Options) (*Result, error) {
	opts.setDefaults()
	res := &Result{}
	d, err := core.ReadDataset(r)
	if err != nil {
		return res, fmt.Errorf("ingest: %w", err)
	}
	// JSON datasets carry window tags; count the distinct ones as
	// intervals for the summary.
	windows := make(map[int]bool)
	for _, s := range d.Samples {
		windows[s.Window] = true
	}
	res.Stats.Intervals = len(windows)
	if err := res.validate(d, opts); err != nil {
		return res, err
	}
	return res, nil
}
