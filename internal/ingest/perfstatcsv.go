package ingest

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"spire/internal/core"
)

// The real `perf stat -x<sep> -I <ms>` interval row layout:
//
//	<time>,<value>,<unit>,<event>,<run-ns>,<pct>[,<opt-metric>,<opt-unit>]
//
// e.g.
//
//	1.000107616,29876,,longest_lat_cache.miss,4512678925,24.53,,
//	2.000362148,<not counted>,,idq.dsb_uops,0,0.00,,
//
// The value column carries the multiplex-scaled count (perf scales by
// enabled/running before printing); pct is the percentage of the interval
// the event actually sat on a counter. Locales with a decimal comma split
// the time and pct columns when the separator is also a comma — perf's
// own docs recommend -x\; there — so the parser accepts both separators
// and reassembles comma-split decimal fields.
const (
	fieldTime = iota
	fieldValue
	fieldUnit
	fieldEvent
	fieldRunNS
	fieldPct
	minFields = fieldRunNS // value rows without run/pct still carry 4 fields
)

// eventAliases maps perf's generic event names onto the registry-style
// names the rest of the repo uses.
var eventAliases = map[string]string{
	"cycles":                    "cpu_clk_unhalted.thread",
	"cpu-cycles":                "cpu_clk_unhalted.thread",
	"cpu_clk_unhalted.thread_p": "cpu_clk_unhalted.thread",
	"instructions":              "inst_retired.any",
	"inst_retired.any_p":        "inst_retired.any",
}

// pmuWrapRe matches pmu-qualified event syntax like "cpu/inst_retired.any/"
// or "cpu_core/cycles/".
var pmuWrapRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_-]*/(.+)/p{0,3}$`)

// CanonicalEvent normalizes a perf event spelling: trims blanks, unwraps
// "pmu/event/" qualification, strips ":ukhG"-style modifiers, lowercases,
// and applies the generic-name aliases.
func CanonicalEvent(name string) string {
	name = strings.TrimSpace(name)
	if m := pmuWrapRe.FindStringSubmatch(name); m != nil {
		name = m[1]
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[:i]
	}
	name = strings.ToLower(name)
	if canon, ok := eventAliases[name]; ok {
		return canon
	}
	return name
}

// row is one parsed counter line.
type row struct {
	line  int
	ts    float64
	event string
	value float64
	pct   float64 // percentage of interval the counter ran; 100 if absent
}

// Scheduler event rows share the interval CSV stream. Layout:
//
//	<time>,<class>,<cycle>,<thread>,<hart>,<obj>,<waker>
//
// e.g.
//
//	1.000107616,sched.block_lock,48123,3,1,queue,0
//
// The first column is the interval timestamp like every other row; the
// second is a "sched."-prefixed class name, which is what marks the row
// as a scheduler event rather than a counter (counter values are
// numeric or <not counted>). Unknown "sched.*" classes are skipped and
// named in Stats.SkippedClasses, never fatal.
const (
	schedFieldTime = iota
	schedFieldClass
	schedFieldCycle
	schedFieldThread
	schedFieldHart
	schedFieldObj
	schedFieldWaker
	schedNumFields
)

// schedPrefix marks scheduler event rows.
const schedPrefix = "sched."

// schedRow is one parsed scheduler event line.
type schedRow struct {
	line int
	ts   float64
	ev   core.SchedEvent
}

// interval accumulates the rows sharing one timestamp.
type interval struct {
	ts    float64
	rows  []row
	sched []core.SchedEvent
	seen  map[string]bool // events already recorded (duplicate detection)
	lines []int
}

// ReadCSV ingests `perf stat -x, -I` (or -x\;) interval output. Lenient
// mode records every anomaly as a Diag and presses on; strict mode aborts
// on the first severe one. The returned dataset uses T = cycles and
// W = instructions from each interval's fixed-counter rows, one sample per
// remaining event, with Window numbering the intervals in timestamp order.
func ReadCSV(r io.Reader, opts Options) (*Result, error) {
	opts.setDefaults()
	res := &Result{}
	cyclesEv := CanonicalEvent(opts.CyclesEvent)
	instEv := CanonicalEvent(opts.InstEvent)

	intervals := make(map[float64]*interval)
	var order []float64
	var lastTS float64
	haveTS := false

	// getInterval finds or opens the interval for ts, diagnosing
	// out-of-order arrivals; a non-nil Diag aborts strict mode.
	getInterval := func(ts float64, lineNo int, raw string) (*interval, *Diag) {
		iv, ok := intervals[ts]
		if ok {
			return iv, nil
		}
		iv = &interval{ts: ts, seen: make(map[string]bool)}
		intervals[ts] = iv
		order = append(order, ts)
		var d *Diag
		if haveTS && ts < lastTS {
			d = &Diag{Line: lineNo, Class: DiagOutOfOrder, Raw: raw,
				Msg: fmt.Sprintf("interval %.9f arrived after %.9f; re-sorting", ts, lastTS)}
		}
		if ts > lastTS {
			lastTS = ts
		}
		haveTS = true
		return iv, d
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		res.Stats.Lines++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if isSchedRow(fields) {
			sr, diag := parseSchedFields(fields, line, lineNo)
			if diag != nil {
				res.diag(opts, *diag)
				if diag.Class == DiagUnknownClass {
					res.Stats.skipClass(classOrPlaceholder(sr.ev.Class))
				}
				if opts.Mode == Strict && diag.Class.Severe() {
					return res, strictErr(*diag)
				}
				continue
			}
			res.Stats.DataLines++
			iv, d := getInterval(sr.ts, lineNo, raw)
			if d != nil {
				res.diag(opts, *d)
				if opts.Mode == Strict {
					return res, strictErr(*d)
				}
			}
			iv.sched = append(iv.sched, sr.ev)
			continue
		}
		rw, diag := parseRowFields(fields, line, lineNo)
		if diag != nil {
			res.diag(opts, *diag)
			if opts.Mode == Strict && diag.Class.Severe() {
				return res, strictErr(*diag)
			}
			continue
		}
		res.Stats.DataLines++
		if rw.pct < opts.MinRunPct {
			d := Diag{Line: lineNo, Class: DiagLowScaling, Raw: raw,
				Msg: fmt.Sprintf("%s ran %.2f%% of the interval (< %.2f%%)", rw.event, rw.pct, opts.MinRunPct)}
			res.diag(opts, d)
			continue
		}
		iv, d := getInterval(rw.ts, lineNo, raw)
		if d != nil {
			res.diag(opts, *d)
			if opts.Mode == Strict {
				return res, strictErr(*d)
			}
		}
		if iv.seen[rw.event] {
			d := Diag{Line: lineNo, Class: DiagDuplicate, Raw: raw,
				Msg: fmt.Sprintf("duplicate row for event %s in interval %.9f; keeping the first", rw.event, rw.ts)}
			res.diag(opts, d)
			if opts.Mode == Strict {
				return res, strictErr(d)
			}
			continue
		}
		iv.seen[rw.event] = true
		iv.rows = append(iv.rows, rw)
		iv.lines = append(iv.lines, lineNo)
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("ingest: reading input: %w", err)
	}

	// Assemble samples in timestamp order.
	sort.Float64s(order)
	var assembled core.Dataset
	window := 0
	for _, ts := range order {
		iv := intervals[ts]
		res.Stats.Intervals++
		var T, W float64
		haveT, haveW := false, false
		for _, rw := range iv.rows {
			switch rw.event {
			case cyclesEv:
				T, haveT = rw.value, true
			case instEv:
				W, haveW = rw.value, true
			}
		}
		haveFixed := haveT && haveW
		if !haveFixed && len(iv.rows) > 0 {
			missing := cyclesEv
			if haveT {
				missing = instEv
			}
			d := Diag{Class: DiagMissingFixed, Line: iv.lines[0],
				Msg: fmt.Sprintf("interval %.9f has no %s row; dropping its %d rows", ts, missing, len(iv.rows))}
			res.diag(opts, d)
			if opts.Mode == Strict {
				return res, strictErr(d)
			}
		}
		// An interval becomes a window when it carries a full counter
		// set or scheduler events; counter-only intervals missing their
		// fixed rows are dropped as before.
		if !haveFixed && len(iv.sched) == 0 {
			continue
		}
		window++
		if haveFixed {
			for _, rw := range iv.rows {
				if rw.event == cyclesEv || rw.event == instEv {
					continue
				}
				assembled.Add(core.Sample{
					Metric: rw.event,
					T:      T,
					W:      W,
					M:      rw.value,
					Window: window,
				})
			}
		}
		for _, ev := range iv.sched {
			ev.Window = window
			assembled.AddSched(ev)
		}
	}

	if err := res.validate(assembled, opts); err != nil {
		return res, err
	}
	return res, nil
}

// splitFields splits a data line on its separator (comma, or semicolon
// when present), trims blanks, and mends decimal-comma splits.
func splitFields(line string) []string {
	sep := byte(',')
	if strings.IndexByte(line, ';') >= 0 {
		sep = ';'
	}
	fields := strings.Split(line, string(sep))
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	if sep == ',' {
		fields = mendDecimalSplits(fields)
	}
	return fields
}

// isSchedRow reports whether split fields form a scheduler event row.
func isSchedRow(fields []string) bool {
	return len(fields) >= 2 && strings.HasPrefix(fields[schedFieldClass], schedPrefix)
}

// parseSchedFields parses a scheduler event row. The returned Diag, when
// non-nil, is the whole story (garbled row or unknown class); callers
// record unknown classes in Stats.SkippedClasses using the class name in
// schedRow.ev.Class, which is filled even on the unknown-class Diag.
func parseSchedFields(fields []string, line string, lineNo int) (schedRow, *Diag) {
	sr := schedRow{line: lineNo}
	if len(fields) != schedNumFields {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("sched row has %d fields, want %d", len(fields), schedNumFields)}
	}
	ts, err := parseNum(fields[schedFieldTime])
	if err != nil {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad interval timestamp %q", fields[schedFieldTime])}
	}
	sr.ts = ts
	sr.ev.Class = fields[schedFieldClass]
	cycle, err := parseNum(fields[schedFieldCycle])
	if err != nil || cycle < 0 {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad sched event time %q", fields[schedFieldCycle])}
	}
	sr.ev.Time = cycle
	thread, err := strconv.Atoi(fields[schedFieldThread])
	if err != nil || thread < 0 {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad sched thread id %q", fields[schedFieldThread])}
	}
	sr.ev.Thread = thread
	hart, err := strconv.Atoi(fields[schedFieldHart])
	if err != nil || hart < 0 {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad sched hart %q", fields[schedFieldHart])}
	}
	sr.ev.Hart = hart
	sr.ev.Obj = fields[schedFieldObj]
	waker, err := strconv.Atoi(fields[schedFieldWaker])
	if err != nil || waker < -1 {
		return sr, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad sched waker %q", fields[schedFieldWaker])}
	}
	sr.ev.Waker = waker
	if !knownSchedClass(sr.ev.Class) {
		return sr, &Diag{Line: lineNo, Class: DiagUnknownClass, Raw: line,
			Msg: fmt.Sprintf("unknown sched event class %q; skipped", sr.ev.Class)}
	}
	return sr, nil
}

// parseRow parses one data line into a row, or classifies it with a Diag.
// A nil Diag with a zero row never happens: exactly one of the returns is
// meaningful.
func parseRow(line string, lineNo int) (row, *Diag) {
	return parseRowFields(splitFields(line), line, lineNo)
}

// parseRowFields is parseRow over pre-split fields.
func parseRowFields(fields []string, line string, lineNo int) (row, *Diag) {
	if len(fields) < minFields {
		return row{}, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("%d fields, want >= %d (truncated line?)", len(fields), minFields)}
	}
	ts, err := parseNum(fields[fieldTime])
	if err != nil {
		return row{}, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad interval timestamp %q", fields[fieldTime])}
	}
	event := CanonicalEvent(fields[fieldEvent])
	if event == "" {
		return row{}, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: "empty event name"}
	}
	switch strings.ToLower(fields[fieldValue]) {
	case "<not counted>":
		return row{}, &Diag{Line: lineNo, Class: DiagNotCounted, Raw: line,
			Msg: fmt.Sprintf("%s not counted in interval %s", event, fields[fieldTime])}
	case "<not supported>":
		return row{}, &Diag{Line: lineNo, Class: DiagNotSupported, Raw: line,
			Msg: fmt.Sprintf("%s not supported by this PMU", event)}
	}
	value, err := parseNum(fields[fieldValue])
	if err != nil {
		return row{}, &Diag{Line: lineNo, Class: DiagGarbled, Raw: line,
			Msg: fmt.Sprintf("bad counter value %q for %s", fields[fieldValue], event)}
	}
	pct := 100.0
	if len(fields) > fieldPct && fields[fieldPct] != "" {
		if p, err := parseNum(fields[fieldPct]); err == nil {
			pct = p
		}
	}
	return row{line: lineNo, ts: ts, event: event, value: value, pct: pct}, nil
}

// mendDecimalSplits repairs comma-separated lines produced under a
// decimal-comma locale, where perf prints "1,000107616" for the timestamp
// and "99,75" for the running percentage and the commas collide with the
// field separator. A numeric field followed by an all-digit fragment that
// cannot start a field of its own (perf prints no leading zeros on
// counter values, so a fragment like "000107616" or a 1-2 digit "75"
// after a percentage-sized number is a split decimal) is rejoined.
func mendDecimalSplits(fields []string) []string {
	out := make([]string, 0, len(fields))
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if i+1 < len(fields) && isAllDigits(f) && isAllDigits(fields[i+1]) {
			next := fields[i+1]
			// Timestamp shape, only at the line start: seconds + 6..9
			// digit nanosecond fraction ("1" + "000107616"). Counter
			// values never occupy the first column in interval mode.
			tsShape := len(out) == 0 && len(next) >= 6 && len(next) <= 9
			// Percentage shape, only past the run-ns column: 1-3 digit
			// whole + exactly 2-digit fraction ("99" + "75").
			pctShape := len(out) >= fieldPct && len(f) <= 3 && len(next) == 2
			if tsShape || pctShape {
				out = append(out, f+"."+next)
				i++
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// isAllDigits reports whether s is non-empty ASCII digits only.
func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parseNum parses a number tolerating surrounding blanks and a
// decimal-comma locale rendering ("1,000107616" as one field, as produced
// with -x\;).
func parseNum(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if strings.Count(s, ",") == 1 && !strings.Contains(s, ".") {
		s = strings.Replace(s, ",", ".", 1)
	}
	return strconv.ParseFloat(s, 64)
}
