package ingest

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"spire/internal/core"
)

// feedAll pushes input through a fresh Incremental in chunks of the given
// size (0 = one chunk) and returns everything it emits.
func feedAll(t *testing.T, input string, chunk int, opts Options) ([]Interval, *Incremental, error) {
	t.Helper()
	in := NewIncremental(opts)
	var out []Interval
	data := []byte(input)
	if chunk <= 0 {
		chunk = len(data)
	}
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		ivs, err := in.Feed(data[:n])
		out = append(out, ivs...)
		if err != nil {
			return out, in, err
		}
		data = data[n:]
	}
	ivs, err := in.Close()
	out = append(out, ivs...)
	return out, in, err
}

// flatten concatenates interval samples in emission order.
func flatten(ivs []Interval) []core.Sample {
	var out []core.Sample
	for _, iv := range ivs {
		out = append(out, iv.Samples...)
	}
	return out
}

// genIntervalCSV builds a well-formed, in-order interval CSV with n
// intervals over the given extra (non-fixed) events.
func genIntervalCSV(n int, events ...string) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		ts := float64(i)
		fmt.Fprintf(&b, "%.9f,%d,,cycles,1000000000,100.00,,\n", ts, 3_000_000_000+i*1000)
		fmt.Fprintf(&b, "%.9f,%d,,instructions,1000000000,100.00,,\n", ts, 4_000_000_000+i*777)
		for j, ev := range events {
			fmt.Fprintf(&b, "%.9f,%d,,%s,250000000,25.00,,\n", ts, 10_000+i*100+j, ev)
		}
	}
	return b.String()
}

// TestIncrementalMatchesBatch: for in-order input, the streaming parser
// must produce exactly the samples ReadCSV produces, for every chunking.
func TestIncrementalMatchesBatch(t *testing.T) {
	input := genIntervalCSV(20, "llc.miss", "dsb.uops", "stalls.total")
	batch, err := ReadCSV(strings.NewReader(input), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, 1, 7, 64, 4096} {
		ivs, in, err := feedAll(t, input, chunk, Options{})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		got := flatten(ivs)
		if !reflect.DeepEqual(got, batch.Dataset.Samples) {
			t.Fatalf("chunk=%d: %d streamed samples != %d batch samples",
				chunk, len(got), batch.Dataset.Len())
		}
		st := in.Stats()
		if st.Lines != batch.Stats.Lines || st.DataLines != batch.Stats.DataLines ||
			st.Intervals != batch.Stats.Intervals || st.Samples != batch.Stats.Samples {
			t.Fatalf("chunk=%d: stats %+v != batch %+v", chunk, st, batch.Stats)
		}
		// Window numbering matches the batch tags.
		for i, iv := range ivs {
			if iv.Window != i+1 {
				t.Fatalf("interval %d tagged window %d", i, iv.Window)
			}
			for _, s := range iv.Samples {
				if s.Window != iv.Window {
					t.Fatalf("sample window %d inside interval %d", s.Window, iv.Window)
				}
			}
		}
	}
}

// TestIncrementalSkylakeFixture: on the real (messy) perf capture the
// streaming parser must agree with ReadCSV on every count and on the
// sample multiset; only window numbering may differ, because ReadCSV
// re-sorts the one out-of-order interval while streaming emits it in
// arrival order.
func TestIncrementalSkylakeFixture(t *testing.T) {
	raw, err := os.ReadFile("testdata/skylake_interval.csv")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ReadCSV(bytes.NewReader(raw), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs, in, err := feedAll(t, string(raw), 333, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Lines != batch.Stats.Lines || st.DataLines != batch.Stats.DataLines ||
		st.Intervals != batch.Stats.Intervals || st.Samples != batch.Stats.Samples {
		t.Fatalf("stats %+v != batch %+v", st, batch.Stats)
	}
	if !reflect.DeepEqual(st.ByClass, batch.Stats.ByClass) {
		t.Fatalf("diag classes %+v != batch %+v", st.ByClass, batch.Stats.ByClass)
	}
	norm := func(samples []core.Sample) []string {
		out := make([]string, 0, len(samples))
		for _, s := range samples {
			s.Window = 0
			out = append(out, s.String())
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(norm(flatten(ivs)), norm(batch.Dataset.Samples)) {
		t.Fatal("sample multiset diverges from batch ingestion")
	}
}

// TestIncrementalPartialLines: chunk boundaries mid-line must never
// produce diagnostics on clean input.
func TestIncrementalPartialLines(t *testing.T) {
	input := "1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n" +
		"1.0,10,,llc.miss,1,25.00,,\n2.0,100,,cycles,1,100.00,,\n" +
		"2.0,50,,instructions,1,100.00,,\n2.0,20,,llc.miss,1,25.00,,\n"
	for chunk := 1; chunk <= len(input); chunk++ {
		_, in, err := feedAll(t, input, chunk, Options{})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if ds := in.TakeDiags(); len(ds) != 0 {
			t.Fatalf("chunk=%d produced spurious diagnostics: %+v", chunk, ds)
		}
	}
}

// TestIncrementalCRLF: Windows-style line endings parse identically.
func TestIncrementalCRLF(t *testing.T) {
	unix := "1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n1.0,10,,llc.miss,1,25.00,,\n"
	dos := strings.ReplaceAll(unix, "\n", "\r\n")
	a, _, err := feedAll(t, unix, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := feedAll(t, dos, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatten(a), flatten(b)) {
		t.Fatalf("CRLF input parsed differently: %+v vs %+v", a, b)
	}
}

// TestIncrementalEmitsOnNextInterval: an interval completes exactly when
// the next one's first row arrives, and Close flushes the last one.
func TestIncrementalEmitsOnNextInterval(t *testing.T) {
	in := NewIncremental(Options{})
	ivs, err := in.Feed([]byte("1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n1.0,10,,llc.miss,1,25.00,,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Fatalf("interval emitted before its successor arrived: %+v", ivs)
	}
	ivs, err = in.Feed([]byte("2.0,100,,cycles,1,100.00,,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].TS != 1.0 || len(ivs[0].Samples) != 1 {
		t.Fatalf("first interval not emitted on ts change: %+v", ivs)
	}
	ivs, err = in.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The second interval has cycles only: missing instructions, dropped.
	if len(ivs) != 0 {
		t.Fatalf("fixed-counter-less interval emitted: %+v", ivs)
	}
	if got := in.Stats().ByClass[DiagMissingFixed.String()]; got != 1 {
		t.Fatalf("missing-fixed count = %d, want 1", got)
	}
	if _, err := in.Feed([]byte("x")); err == nil {
		t.Fatal("feed after close must error")
	}
}

// TestIncrementalOversizedLine: a line beyond the bound becomes one
// garbled diagnostic and the stream keeps going (ReadCSV would abort).
func TestIncrementalOversizedLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n")
	b.WriteString(strings.Repeat("x", maxLineBytes+10))
	b.WriteString("\n1.0,10,,llc.miss,1,25.00,,\n2.0,100,,cycles,1,100.00,,\n2.0,50,,instructions,1,100.00,,\n2.0,20,,llc.miss,1,25.00,,\n")
	ivs, in, err := feedAll(t, b.String(), 8192, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Stats().ByClass[DiagGarbled.String()]; got != 1 {
		t.Fatalf("garbled count = %d, want 1", got)
	}
	if len(ivs) != 2 {
		t.Fatalf("stream did not survive the oversized line: %d intervals", len(ivs))
	}
	if len(ivs[0].Samples) != 1 || len(ivs[1].Samples) != 1 {
		t.Fatalf("samples lost around the oversized line: %+v", ivs)
	}
}

// TestIncrementalStrictSticky: strict mode aborts on the first severe
// anomaly and stays aborted.
func TestIncrementalStrictSticky(t *testing.T) {
	in := NewIncremental(Options{Mode: Strict})
	_, err := in.Feed([]byte("1.0,100,,cycles,1,100.00,,\ngarbage line\n"))
	if err == nil {
		t.Fatal("strict mode did not abort on a garbled line")
	}
	if _, err2 := in.Feed([]byte("2.0,100,,cycles,1,100.00,,\n")); err2 == nil {
		t.Fatal("strict abort is not sticky")
	}
	if _, err2 := in.Close(); err2 == nil {
		t.Fatal("close after strict abort must return the error")
	}
}

// TestIncrementalOutOfOrder: backwards timestamps are diagnosed but the
// intervals still flow in arrival order.
func TestIncrementalOutOfOrder(t *testing.T) {
	input := "5.0,100,,cycles,1,100.00,,\n5.0,50,,instructions,1,100.00,,\n5.0,10,,llc.miss,1,25.00,,\n" +
		"3.0,100,,cycles,1,100.00,,\n3.0,50,,instructions,1,100.00,,\n3.0,12,,llc.miss,1,25.00,,\n" +
		"6.0,100,,cycles,1,100.00,,\n6.0,50,,instructions,1,100.00,,\n6.0,14,,llc.miss,1,25.00,,\n"
	ivs, in, err := feedAll(t, input, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Stats().ByClass[DiagOutOfOrder.String()]; got != 1 {
		t.Fatalf("out-of-order count = %d, want 1", got)
	}
	if len(ivs) != 3 || ivs[0].TS != 5.0 || ivs[1].TS != 3.0 || ivs[2].TS != 6.0 {
		t.Fatalf("arrival order not preserved: %+v", ivs)
	}
}

// TestIncrementalDuplicateAndLowScaling: within-interval duplicates keep
// the first row; under-scheduled rows are filtered by MinRunPct.
func TestIncrementalDuplicateAndLowScaling(t *testing.T) {
	input := "1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n" +
		"1.0,10,,llc.miss,1,25.00,,\n1.0,99,,llc.miss,1,25.00,,\n" +
		"1.0,7,,dsb.uops,1,3.00,,\n" +
		"2.0,100,,cycles,1,100.00,,\n"
	ivs, in, err := feedAll(t, input, 5, Options{MinRunPct: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Stats().ByClass[DiagDuplicate.String()]; got != 1 {
		t.Fatalf("duplicate count = %d, want 1", got)
	}
	if got := in.Stats().ByClass[DiagLowScaling.String()]; got != 1 {
		t.Fatalf("low-scaling count = %d, want 1", got)
	}
	if len(ivs) != 1 || len(ivs[0].Samples) != 1 || ivs[0].Samples[0].M != 10 {
		t.Fatalf("wrong surviving samples: %+v", ivs)
	}
}

// TestIncrementalQuarantine: per-interval validation quarantines
// structurally broken samples and reports them.
func TestIncrementalQuarantine(t *testing.T) {
	// 2^49 is beyond the physical 48-bit counter range: a wrap.
	input := "1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n" +
		"1.0,562949953421312,,llc.miss,1,25.00,,\n1.0,10,,dsb.uops,1,25.00,,\n" +
		"2.0,100,,cycles,1,100.00,,\n"
	ivs, in, err := feedAll(t, input, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Quarantined != 1 || len(ivs[0].Samples) != 1 {
		t.Fatalf("quarantine not applied: %+v", ivs)
	}
	if got := in.Stats().ByClass[DiagQuarantined.String()]; got != 1 {
		t.Fatalf("quarantined count = %d, want 1", got)
	}
	if in.Stats().Samples != 1 {
		t.Fatalf("Stats.Samples = %d, want 1", in.Stats().Samples)
	}
}

// TestTakeDiags: draining resets retention so the cap applies per drain,
// while ByClass keeps counting.
func TestTakeDiags(t *testing.T) {
	in := NewIncremental(Options{MaxDiags: 2})
	for i := 0; i < 5; i++ {
		if _, err := in.Feed([]byte("garbage\n")); err != nil {
			t.Fatal(err)
		}
	}
	first := in.TakeDiags()
	if len(first) != 2 {
		t.Fatalf("retained %d diags, want cap 2", len(first))
	}
	if _, err := in.Feed([]byte("more garbage\n")); err != nil {
		t.Fatal(err)
	}
	second := in.TakeDiags()
	if len(second) != 1 {
		t.Fatalf("drain did not reset retention: %d diags", len(second))
	}
	if got := in.Stats().ByClass[DiagGarbled.String()]; got != 6 {
		t.Fatalf("ByClass garbled = %d, want 6", got)
	}
	if len(in.TakeDiags()) != 0 {
		t.Fatal("second drain must be empty")
	}
}

// TestLineSplitterBoundaries exercises the splitter directly across
// pathological chunkings.
func TestLineSplitterBoundaries(t *testing.T) {
	input := "alpha\nbeta\r\ngamma"
	want := []string{"alpha", "beta", "gamma"}
	for chunk := 1; chunk <= len(input); chunk++ {
		var ls LineSplitter
		var got []string
		emit := func(line []byte, overran bool) {
			if overran {
				t.Fatalf("chunk=%d: unexpected overrun", chunk)
			}
			got = append(got, string(line))
		}
		data := []byte(input)
		for len(data) > 0 {
			n := chunk
			if n > len(data) {
				n = len(data)
			}
			ls.Feed(data[:n], emit)
			data = data[n:]
		}
		if ls.Pending() != true {
			t.Fatalf("chunk=%d: trailing fragment not pending", chunk)
		}
		ls.Flush(emit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk=%d: lines %q, want %q", chunk, got, want)
		}
	}
}

// TestIncrementalStatsSnapshot: Stats must return an independent ByClass
// copy — the serve hub marshals the snapshot to JSON outside the lock
// that serializes feeders, so handing out the live map would be a
// concurrent map read/write crash waiting to happen.
func TestIncrementalStatsSnapshot(t *testing.T) {
	in := NewIncremental(Options{})
	if _, err := in.Feed([]byte("garbage line\n")); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if got := st.ByClass[DiagGarbled.String()]; got != 1 {
		t.Fatalf("garbled count = %d, want 1", got)
	}
	st.ByClass["tampered"] = 99
	if _, err := in.Feed([]byte("more garbage\n")); err != nil {
		t.Fatal(err)
	}
	fresh := in.Stats()
	if _, ok := fresh.ByClass["tampered"]; ok {
		t.Fatal("mutating a Stats snapshot leaked into the parser's live map")
	}
	if got := fresh.ByClass[DiagGarbled.String()]; got != 2 {
		t.Fatalf("live counting broken after snapshot: garbled = %d, want 2", got)
	}
	if got := st.ByClass[DiagGarbled.String()]; got != 1 {
		t.Fatal("earlier snapshot changed after further feeding")
	}
}
