package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spire/internal/core"
)

func readFixture(t *testing.T, opts Options) *Result {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "skylake_interval.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := Read(f, opts)
	if err != nil {
		t.Fatalf("ingest fixture: %v\n%s", err, res.Summary())
	}
	return res
}

func TestFixtureLenient(t *testing.T) {
	res := readFixture(t, Options{})
	if res.Stats.Intervals != 24 {
		t.Errorf("intervals = %d, want 24", res.Stats.Intervals)
	}
	// 24 intervals x 4 metric events, minus the <not counted> dsb row in
	// interval 7 and the truncated llc row in interval 14.
	if res.Stats.Samples != 94 {
		t.Errorf("samples = %d, want 94\n%s", res.Stats.Samples, res.Summary())
	}
	wantDiags := map[DiagClass]int{
		DiagGarbled:      2, // truncated row + terminal noise
		DiagNotCounted:   1,
		DiagNotSupported: 1,
		DiagDuplicate:    1,
		DiagOutOfOrder:   1,
	}
	for class, n := range wantDiags {
		if got := res.Stats.ByClass[class.String()]; got != n {
			t.Errorf("%s diags = %d, want %d", class, got, n)
		}
	}
	// Windows must be 1..24 in timestamp order despite the out-of-order
	// block in the file.
	seen := make(map[int]bool)
	for _, s := range res.Dataset.Samples {
		seen[s.Window] = true
		if s.T <= 0 || s.W <= 0 {
			t.Fatalf("sample with non-positive fixed counters: %s", s)
		}
	}
	for w := 1; w <= 24; w++ {
		if !seen[w] {
			t.Errorf("window %d missing", w)
		}
	}
	// The mixed-locale line must land as a normal sample.
	var locLine bool
	for _, s := range res.Dataset.Samples {
		if s.Window == 15 && s.Metric == "longest_lat_cache.miss" && s.M == 123456789 {
			locLine = true
		}
	}
	if !locLine {
		t.Error("decimal-comma line did not survive as a sample")
	}
	if !strings.Contains(res.Summary(), "24 intervals") {
		t.Errorf("Summary() = %q", res.Summary())
	}
	// The surviving dataset must train.
	ens, err := core.Train(res.Dataset, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatalf("training on ingested fixture: %v", err)
	}
	for _, name := range []string{"longest_lat_cache.miss", "idq.dsb_uops", "cycle_activity.stalls_total", "br_misp_retired.all_branches"} {
		r, ok := ens.Rooflines[name]
		if !ok {
			t.Errorf("metric %s missing from trained model", name)
			continue
		}
		if err := r.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestFixtureStrictAborts(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "skylake_interval.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Read(f, Options{Mode: Strict}); err == nil {
		t.Error("strict mode must reject the corrupted fixture")
	}
}

const cleanCSV = `# clean run
1.000000001,3200000000,,cycles,1000000000,100.00,,
1.000000001,4800000000,,instructions,1000000000,100.00,,
1.000000001,12000000,,longest_lat_cache.miss,250000000,25.00,,
2.000000002,3200000000,,cycles,1000000000,100.00,,
2.000000002,4000000000,,instructions,1000000000,100.00,,
2.000000002,30000000,,longest_lat_cache.miss,250000000,25.00,,
`

func TestCleanCSVStrict(t *testing.T) {
	res, err := ReadCSV(strings.NewReader(cleanCSV), Options{Mode: Strict})
	if err != nil {
		t.Fatalf("strict ingest of clean data: %v", err)
	}
	if res.Stats.Samples != 2 || res.Stats.Intervals != 2 {
		t.Errorf("samples=%d intervals=%d, want 2/2", res.Stats.Samples, res.Stats.Intervals)
	}
	s := res.Dataset.Samples[0]
	if s.Metric != "longest_lat_cache.miss" || s.T != 3.2e9 || s.W != 4.8e9 || s.M != 1.2e7 {
		t.Errorf("sample = %s", s)
	}
}

func TestSemicolonSeparatorDecimalComma(t *testing.T) {
	// perf stat -x\; under a decimal-comma locale.
	in := "1,000107616;3200000000;;cycles;1000000000;100,00;;\n" +
		"1,000107616;4800000000;;instructions;1000000000;100,00;;\n" +
		"1,000107616;54321;;br_misp_retired.all_branches;248000000;24,80;;\n"
	res, err := ReadCSV(strings.NewReader(in), Options{Mode: Strict})
	if err != nil {
		t.Fatalf("semicolon ingest: %v", err)
	}
	if res.Stats.Samples != 1 {
		t.Fatalf("samples = %d, want 1\n%s", res.Stats.Samples, res.Summary())
	}
	s := res.Dataset.Samples[0]
	if s.M != 54321 || s.T != 3.2e9 {
		t.Errorf("sample = %s", s)
	}
}

func TestEventCanonicalization(t *testing.T) {
	cases := map[string]string{
		"cycles":                    "cpu_clk_unhalted.thread",
		"cpu-cycles":                "cpu_clk_unhalted.thread",
		"CPU-CYCLES":                "cpu_clk_unhalted.thread",
		"instructions:u":            "inst_retired.any",
		"cpu/inst_retired.any/":     "inst_retired.any",
		"cpu_core/cycles/":          "cpu_clk_unhalted.thread",
		"idq.dsb_uops:ppp":          "idq.dsb_uops",
		"longest_lat_cache.miss":    "longest_lat_cache.miss",
		" idq.ms_switches ":         "idq.ms_switches",
		"inst_retired.any_p":        "inst_retired.any",
		"cpu_clk_unhalted.thread_p": "cpu_clk_unhalted.thread",
	}
	for in, want := range cases {
		if got := CanonicalEvent(in); got != want {
			t.Errorf("CanonicalEvent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMissingFixedCounters(t *testing.T) {
	// Interval with no instructions row: its metric rows must be dropped
	// with a missing-fixed diagnostic, not emitted with a zero W.
	in := "1.000000001,3200000000,,cycles,1000000000,100.00,,\n" +
		"1.000000001,12000000,,longest_lat_cache.miss,250000000,25.00,,\n"
	res, err := ReadCSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples != 0 {
		t.Errorf("samples = %d, want 0", res.Stats.Samples)
	}
	if res.Stats.ByClass[DiagMissingFixed.String()] != 1 {
		t.Errorf("diags = %v, want one missing-fixed", res.Stats.ByClass)
	}
	if _, err := ReadCSV(strings.NewReader(in), Options{Mode: Strict}); err == nil {
		t.Error("strict mode must reject an interval without fixed counters")
	}
}

func TestGarbageOnlyInput(t *testing.T) {
	in := "complete nonsense\n\x00\x01\x02\nmore,junk\n"
	res, err := ReadCSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatalf("lenient ingest of garbage must not error: %v", err)
	}
	if res.Stats.Samples != 0 || res.Stats.ByClass[DiagGarbled.String()] != 3 {
		t.Errorf("samples=%d diags=%v", res.Stats.Samples, res.Stats.ByClass)
	}
	if _, err := ReadCSV(strings.NewReader(in), Options{Mode: Strict}); err == nil {
		t.Error("strict mode must reject garbage")
	}
}

func TestMinRunPct(t *testing.T) {
	in := cleanCSV +
		"3.000000003,3200000000,,cycles,1000000000,100.00,,\n" +
		"3.000000003,4000000000,,instructions,1000000000,100.00,,\n" +
		"3.000000003,999999999,,longest_lat_cache.miss,1000000,0.10,,\n"
	res, err := ReadCSV(strings.NewReader(in), Options{MinRunPct: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples != 2 {
		t.Errorf("samples = %d, want 2 (low-scaling row dropped)", res.Stats.Samples)
	}
	if res.Stats.ByClass[DiagLowScaling.String()] != 1 {
		t.Errorf("diags = %v", res.Stats.ByClass)
	}
}

func TestReadJSONLenientQuarantine(t *testing.T) {
	var d core.Dataset
	d.Add(
		core.Sample{Metric: "a", T: 1000, W: 1500, M: 10, Window: 1},
		// JSON cannot carry NaN; a negative period is the corrupt-sample
		// shape that survives encoding.
		core.Sample{Metric: "a", T: -1000, W: 1500, M: 10, Window: 2},
		core.Sample{Metric: "a", T: 1000, W: 1500, M: 20, Window: 3},
	)
	var sb strings.Builder
	if err := core.WriteDataset(&sb, d); err != nil {
		t.Fatal(err)
	}
	res, err := Read(strings.NewReader(sb.String()), Options{})
	if err != nil {
		t.Fatalf("json ingest: %v", err)
	}
	if res.Stats.Samples != 2 || res.Validation.Quarantined != 1 {
		t.Errorf("samples=%d quarantined=%d, want 2/1", res.Stats.Samples, res.Validation.Quarantined)
	}
	if res.Stats.ByClass[DiagQuarantined.String()] != 1 {
		t.Errorf("diags = %v", res.Stats.ByClass)
	}
	if _, err := Read(strings.NewReader(sb.String()), Options{Mode: Strict}); err == nil {
		t.Error("strict json ingest must reject the NaN sample")
	}
	if _, err := Read(strings.NewReader("{broken json"), Options{}); err == nil {
		t.Error("malformed json must error even in lenient mode")
	}
}

func TestReadSniffsFormat(t *testing.T) {
	// Leading whitespace then JSON.
	res, err := Read(strings.NewReader("\n\t {\"samples\":[]}"), Options{})
	if err != nil {
		t.Fatalf("sniffed json: %v", err)
	}
	if res.Stats.Samples != 0 {
		t.Errorf("samples = %d", res.Stats.Samples)
	}
	// CSV content.
	res, err = Read(strings.NewReader(cleanCSV), Options{})
	if err != nil || res.Stats.Samples != 2 {
		t.Errorf("sniffed csv: %v, samples=%d", err, res.Stats.Samples)
	}
	// Empty input is an empty (lenient) CSV.
	res, err = Read(strings.NewReader(""), Options{})
	if err != nil || res.Stats.Samples != 0 {
		t.Errorf("empty input: %v, samples=%d", err, res.Stats.Samples)
	}
}

func TestDiagCapAndSummary(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString("garbage line\n")
	}
	res, err := ReadCSV(strings.NewReader(sb.String()), Options{MaxDiags: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 5 {
		t.Errorf("retained diags = %d, want 5", len(res.Diags))
	}
	if res.Stats.ByClass[DiagGarbled.String()] != 50 {
		t.Errorf("counted diags = %v, want garbled:50", res.Stats.ByClass)
	}
	if !strings.Contains(res.Summary(), "garbled:50") {
		t.Errorf("Summary() = %q", res.Summary())
	}
}

func TestFileIngest(t *testing.T) {
	res, err := File(filepath.Join("testdata", "skylake_interval.csv"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples == 0 {
		t.Error("no samples from File ingest")
	}
	if _, err := File(filepath.Join("testdata", "missing.csv"), Options{}); err == nil {
		t.Error("missing file must error")
	}
}

// TestSevereDiags: the partial-success signal counts exactly the classes
// a strict run would abort on.
func TestSevereDiags(t *testing.T) {
	clean := Stats{ByClass: map[string]int{
		DiagNotCounted.String():   7,
		DiagNotSupported.String(): 2,
		DiagLowScaling.String():   3,
	}}
	if n := clean.SevereDiags(); n != 0 {
		t.Errorf("benign classes counted as severe: %d", n)
	}
	degraded := Stats{ByClass: map[string]int{
		DiagGarbled.String():     2,
		DiagDuplicate.String():   1,
		DiagQuarantined.String(): 4,
		DiagNotCounted.String():  9,
	}}
	if n := degraded.SevereDiags(); n != 7 {
		t.Errorf("SevereDiags = %d, want 7", n)
	}
	if n := (Stats{}).SevereDiags(); n != 0 {
		t.Errorf("empty stats severe = %d, want 0", n)
	}
}
