package analysis

import (
	"math"
	"sort"

	"spire/internal/core"
)

// MetricCorrelation is one metric pair's association across collection
// windows: the Pearson correlation of their per-cycle rates. Highly
// correlated metrics are measuring the same underlying behaviour — the
// "causal and confounded relationships" the paper warns complicate
// follow-up analysis (§III-C). Checking a candidate pool against these
// correlations tells the user which pool members are redundant.
type MetricCorrelation struct {
	A, B string
	// Rho is the Pearson correlation of the two metrics' per-cycle
	// rates over their shared windows.
	Rho float64
	// Windows is the number of shared windows the estimate used.
	Windows int
}

// Correlations computes pairwise rate correlations over a windowed
// dataset. Pairs sharing fewer than minWindows windows are skipped, as
// are pairs with |rho| below threshold. Results are sorted by descending
// |rho|, ties broken lexically.
func Correlations(d core.Dataset, minWindows int, threshold float64) []MetricCorrelation {
	if minWindows < 3 {
		minWindows = 3
	}
	// Collect each metric's per-window rate.
	rates := make(map[string]map[int]float64)
	for _, s := range d.Samples {
		if !s.Valid() || s.Window == 0 {
			continue
		}
		m := rates[s.Metric]
		if m == nil {
			m = make(map[int]float64)
			rates[s.Metric] = m
		}
		m[s.Window] = s.M / s.T
	}
	metrics := make([]string, 0, len(rates))
	for m := range rates {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)

	var out []MetricCorrelation
	for i := 0; i < len(metrics); i++ {
		for j := i + 1; j < len(metrics); j++ {
			a, b := rates[metrics[i]], rates[metrics[j]]
			rho, n := pearsonShared(a, b)
			if n < minWindows || math.IsNaN(rho) || math.Abs(rho) < threshold {
				continue
			}
			out = append(out, MetricCorrelation{A: metrics[i], B: metrics[j], Rho: rho, Windows: n})
		}
	}
	sort.Slice(out, func(x, y int) bool {
		ax, ay := math.Abs(out[x].Rho), math.Abs(out[y].Rho)
		if ax != ay {
			return ax > ay
		}
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out
}

// pearsonShared computes the Pearson correlation over the keys common to
// both maps.
func pearsonShared(a, b map[int]float64) (float64, int) {
	var xs, ys []float64
	for w, va := range a {
		if vb, ok := b[w]; ok {
			xs = append(xs, va)
			ys = append(ys, vb)
		}
	}
	n := len(xs)
	if n < 2 {
		return math.NaN(), n
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var num, dx, dy float64
	for i := range xs {
		a := xs[i] - mx
		b := ys[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return math.NaN(), n
	}
	return num / math.Sqrt(dx*dy), n
}

// RedundantWith returns the metrics from the correlation list that are
// strongly associated with the given metric (|rho| >= threshold).
func RedundantWith(corrs []MetricCorrelation, metric string, threshold float64) []string {
	var out []string
	for _, c := range corrs {
		if math.Abs(c.Rho) < threshold {
			continue
		}
		switch metric {
		case c.A:
			out = append(out, c.B)
		case c.B:
			out = append(out, c.A)
		}
	}
	sort.Strings(out)
	return out
}
