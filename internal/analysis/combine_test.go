package analysis

import (
	"bytes"
	"strings"
	"testing"

	"spire/internal/core"
)

// contendedLockEvents: thread 0 holds lock "q" while thread 1 waits on
// it; thread 1 also spends time runnable before switching in.
func contendedLockEvents() []core.SchedEvent {
	return []core.SchedEvent{
		{Time: 0, Class: "sched.switch_in", Thread: 0, Hart: 0, Waker: -1, Window: -1},
		{Time: 0, Class: "sched.wakeup", Thread: 1, Hart: 1, Waker: 0, Window: -1},
		{Time: 10, Class: "sched.switch_in", Thread: 1, Hart: 1, Waker: -1, Window: -1},
		{Time: 20, Class: "sched.block_lock", Thread: 1, Hart: 1, Obj: "q", Waker: 0, Window: -1},
		{Time: 100, Class: "sched.unblock_lock", Thread: 1, Hart: 1, Obj: "q", Waker: -1, Window: -1},
		{Time: 100, Class: "sched.switch_in", Thread: 1, Hart: 1, Waker: -1, Window: -1},
		{Time: 120, Class: "sched.switch_out", Thread: 1, Hart: 1, Waker: -1, Window: -1},
		{Time: 120, Class: "sched.switch_out", Thread: 0, Hart: 0, Waker: -1, Window: -1},
	}
}

func TestCombineEmptyAndUnusable(t *testing.T) {
	rep, err := Combine(nil, nil)
	if rep != nil || err != nil {
		t.Fatalf("Combine(nil, nil) = %v, %v; want nil, nil", rep, err)
	}
	// Unknown classes only: the graph sees zero threads and the report
	// stays absent rather than erroring.
	rep, err = Combine(nil, []core.SchedEvent{
		{Time: 1, Class: "sched.not_a_class", Thread: 0, Waker: -1, Window: -1},
	})
	if rep != nil || err != nil {
		t.Fatalf("Combine(unknown-only) = %v, %v; want nil, nil", rep, err)
	}
}

func TestCombineWaitOnly(t *testing.T) {
	rep, err := Combine(nil, contendedLockEvents())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	p := rep.Partition
	if p.Wall != p.OnCPU+p.OffCPU || p.OffCPU != p.LockWait+p.IOWait+p.RunnableWait {
		t.Fatalf("partition not exact: %+v", p)
	}
	if p.Threads != 2 || p.LockWait != 80 {
		t.Fatalf("partition = %+v, want 2 threads with 80 cycles of lock wait", p)
	}
	top := rep.Top()
	if top == nil || top.Source != "wait" || top.Wait == nil || top.Wait.Kind != "lock" || top.Wait.Object != "q" {
		t.Fatalf("top = %+v, want the contended lock q", top)
	}
	// Every wait entry in the ranking aliases the Waits slice, so wire
	// encoders can chase the pointer without copying.
	for _, b := range rep.Ranked {
		if b.Source == "wait" && b.Wait == nil {
			t.Fatalf("wait-sourced entry without verdict: %+v", b)
		}
	}
}

func TestCombineMergesRooflineRanking(t *testing.T) {
	est := &core.Estimation{
		PerMetric: []core.MetricEstimate{
			{Metric: "llc.miss", MeanEstimate: 2, Samples: 5, MeanIntensity: 1},
			{Metric: "dram.bw", MeanEstimate: 4, Samples: 5, MeanIntensity: 1},
		},
		MaxThroughput: 2,
	}
	rep, err := Combine(est, contendedLockEvents())
	if err != nil {
		t.Fatal(err)
	}
	var rooflines []core.CombinedBottleneck
	for _, b := range rep.Ranked {
		if b.Source == "roofline" {
			rooflines = append(rooflines, b)
		}
	}
	if len(rooflines) != 2 {
		t.Fatalf("ranking carries %d roofline entries, want 2: %+v", len(rooflines), rep.Ranked)
	}
	// The binding metric explains the whole on-CPU share; the looser
	// metric proportionally less.
	onShare := rep.Partition.OnCPU / rep.Partition.Wall
	if rooflines[0].Metric != "llc.miss" || rooflines[0].Score != onShare {
		t.Fatalf("binding roofline = %+v, want llc.miss at score %v", rooflines[0], onShare)
	}
	if rooflines[1].Metric != "dram.bw" || rooflines[1].Score >= rooflines[0].Score {
		t.Fatalf("looser roofline not discounted: %+v", rooflines)
	}
	// Scores descend overall.
	for i := 1; i < len(rep.Ranked); i++ {
		if rep.Ranked[i].Score > rep.Ranked[i-1].Score {
			t.Fatalf("ranking not descending at %d: %+v", i, rep.Ranked)
		}
	}
}

func TestCombineCapsRooflineEntries(t *testing.T) {
	est := &core.Estimation{MaxThroughput: 1}
	for i := 0; i < maxRooflineRanked+3; i++ {
		est.PerMetric = append(est.PerMetric, core.MetricEstimate{
			Metric: "m" + strings.Repeat("x", i+1), MeanEstimate: float64(i + 1), Samples: 1,
		})
	}
	rep, err := Combine(est, contendedLockEvents())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range rep.Ranked {
		if b.Source == "roofline" {
			n++
		}
	}
	if n != maxRooflineRanked {
		t.Fatalf("%d roofline entries ranked, want cap %d", n, maxRooflineRanked)
	}
}

func TestWaitDetailKinds(t *testing.T) {
	cases := []struct {
		v    core.WaitVerdict
		want string
	}{
		{core.WaitVerdict{Kind: "lock", Object: "q", Waiters: 2, Wait: 80}, `lock "q" contended`},
		{core.WaitVerdict{Kind: "io", Object: "nvme0", Waiters: 4, Wait: 100}, `device "nvme0" saturated`},
		{core.WaitVerdict{Kind: "runnable", Waiters: 3, Wait: 50}, "run-queue pressure"},
		{core.WaitVerdict{Kind: "knot", Object: "threads 0,1", Wait: 40}, "knot"},
		{core.WaitVerdict{Kind: "exotic", Object: "z", Wait: 1}, "exotic z"},
	}
	for _, tc := range cases {
		if got := waitDetail(tc.v); !strings.Contains(got, tc.want) {
			t.Errorf("waitDetail(%s) = %q, want it to mention %q", tc.v.Kind, got, tc.want)
		}
	}
}

func TestRenderCombined(t *testing.T) {
	if err := RenderCombined(&bytes.Buffer{}, nil); err != nil {
		t.Fatalf("nil report render: %v", err)
	}
	rep, err := Combine(nil, contendedLockEvents())
	if err != nil || rep == nil {
		t.Fatalf("combine: %v", err)
	}
	rep.Knot = true
	var buf bytes.Buffer
	if err := RenderCombined(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"time partition over 2 threads",
		"off-CPU breakdown",
		"contains a knot",
		"Combined bottleneck ranking",
		`lock "q" contended`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}

	// A report with an empty ranking renders the partition only.
	buf.Reset()
	if err := RenderCombined(&buf, &core.CombinedReport{Partition: rep.Partition}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Combined bottleneck ranking") {
		t.Fatalf("empty ranking still rendered a table:\n%s", buf.String())
	}
}

func TestShareOf(t *testing.T) {
	if got := shareOf(5, 0); got != 0 {
		t.Fatalf("shareOf(5, 0) = %v, want 0", got)
	}
	if got := shareOf(5, 10); got != 0.5 {
		t.Fatalf("shareOf(5, 10) = %v, want 0.5", got)
	}
}
