package analysis

import (
	"math"
	"math/rand"
	"testing"

	"spire/internal/core"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// correlatedDataset builds windows where metric "a" and "b" move
// together, "c" moves opposite to "a", and "noise" is independent.
func correlatedDataset(windows int) core.Dataset {
	rng := rand.New(rand.NewSource(8))
	var d core.Dataset
	for w := 1; w <= windows; w++ {
		base := rng.Float64()*100 + 10
		T := 1000.0
		d.Add(
			core.Sample{Metric: "a", T: T, W: 500, M: base * 10, Window: w},
			core.Sample{Metric: "b", T: T, W: 500, M: base*10 + rng.Float64(), Window: w},
			core.Sample{Metric: "c", T: T, W: 500, M: 2000 - base*10, Window: w},
			core.Sample{Metric: "noise", T: T, W: 500, M: rng.Float64() * 1000, Window: w},
		)
	}
	return d
}

func TestCorrelationsFindPairs(t *testing.T) {
	d := correlatedDataset(40)
	corrs := Correlations(d, 5, 0.9)
	find := func(a, b string) (MetricCorrelation, bool) {
		for _, c := range corrs {
			if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
				return c, true
			}
		}
		return MetricCorrelation{}, false
	}
	ab, ok := find("a", "b")
	if !ok || ab.Rho < 0.99 {
		t.Errorf("a-b correlation missing or weak: %+v ok=%v", ab, ok)
	}
	ac, ok := find("a", "c")
	if !ok || ac.Rho > -0.99 {
		t.Errorf("a-c anticorrelation missing or weak: %+v ok=%v", ac, ok)
	}
	if _, ok := find("a", "noise"); ok {
		t.Error("noise should not correlate with a at 0.9 threshold")
	}
	// Sorted by |rho| descending.
	for i := 1; i < len(corrs); i++ {
		if math.Abs(corrs[i].Rho) > math.Abs(corrs[i-1].Rho)+1e-12 {
			t.Fatal("correlations not sorted by |rho|")
		}
	}
}

func TestCorrelationsMinWindows(t *testing.T) {
	d := correlatedDataset(4)
	if got := Correlations(d, 10, 0.5); len(got) != 0 {
		t.Errorf("pairs with too few windows should be skipped, got %d", len(got))
	}
}

func TestCorrelationsIgnoresUntaggedAndInvalid(t *testing.T) {
	var d core.Dataset
	d.Add(
		core.Sample{Metric: "a", T: 1000, W: 1, M: 1, Window: 0}, // untagged
		core.Sample{Metric: "b", T: 0, W: 1, M: 1, Window: 1},    // invalid
	)
	if got := Correlations(d, 3, 0); len(got) != 0 {
		t.Errorf("expected no correlations, got %v", got)
	}
}

func TestConstantRateSkipped(t *testing.T) {
	var d core.Dataset
	for w := 1; w <= 10; w++ {
		d.Add(
			core.Sample{Metric: "const", T: 1000, W: 1, M: 42, Window: w},
			core.Sample{Metric: "vary", T: 1000, W: 1, M: float64(w), Window: w},
		)
	}
	// A (near-)constant rate must never read as a strong correlation
	// (exact zero variance yields NaN and is skipped; float dust may
	// leave an epsilon-sized rho).
	if got := Correlations(d, 3, 0.5); len(got) != 0 {
		t.Errorf("constant-rate metric should not correlate strongly, got %v", got)
	}
}

func TestRedundantWith(t *testing.T) {
	corrs := []MetricCorrelation{
		{A: "a", B: "b", Rho: 0.99},
		{A: "a", B: "c", Rho: -0.95},
		{A: "b", B: "noise", Rho: 0.3},
	}
	got := RedundantWith(corrs, "a", 0.9)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("RedundantWith(a) = %v, want [b c]", got)
	}
	if got := RedundantWith(corrs, "noise", 0.9); len(got) != 0 {
		t.Errorf("RedundantWith(noise) = %v, want empty", got)
	}
}

// TestCorrelationsOnRealPipelineData sanity-checks the detector on real
// sampler output: the nested delivery counters (DQ.1 ⊆ DQ.2 ⊆ DQ.3) must
// correlate strongly.
func TestCorrelationsOnRealPipelineData(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline data skipped in -short mode")
	}
	d := pipelineDataset(t)
	corrs := Correlations(d, 5, 0.95)
	found := false
	for _, c := range corrs {
		if (c.A == "idq_uops_not_delivered.cycles_le_1_uop_deliv.core" &&
			c.B == "idq_uops_not_delivered.cycles_le_2_uop_deliv.core") ||
			(c.B == "idq_uops_not_delivered.cycles_le_1_uop_deliv.core" &&
				c.A == "idq_uops_not_delivered.cycles_le_2_uop_deliv.core") {
			found = true
		}
	}
	if !found {
		t.Error("nested DQ counters should correlate above 0.95")
	}
}

// pipelineDataset samples one front-end-bound workload on the simulator.
func pipelineDataset(t *testing.T) core.Dataset {
	t.Helper()
	spec, err := workloads.ByName("scikit-featexp")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.2), 3)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := perfstat.Collect(s, spec.Name, perfstat.Options{
		IntervalCycles: 25_000,
		MaxCycles:      2_000_000,
		Multiplex:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}
