package analysis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spire/internal/core"
	"spire/internal/pmu"
)

// estimation builds a core.Estimation from (metric, estimate) pairs
// already sorted ascending.
func estimation(measured float64, pairs ...interface{}) *core.Estimation {
	est := &core.Estimation{MeasuredThroughput: measured, MaxThroughput: math.Inf(1)}
	for i := 0; i+1 < len(pairs); i += 2 {
		m := core.MetricEstimate{
			Metric:       pairs[i].(string),
			MeanEstimate: pairs[i+1].(float64),
			Samples:      10,
		}
		est.PerMetric = append(est.PerMetric, m)
		if m.MeanEstimate < est.MaxThroughput {
			est.MaxThroughput = m.MeanEstimate
		}
	}
	return est
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err != ErrEmptyEstimation {
		t.Errorf("nil estimation: err = %v", err)
	}
	if _, err := Analyze(&core.Estimation{}, Options{}); err != ErrEmptyEstimation {
		t.Errorf("empty estimation: err = %v", err)
	}
}

func TestPoolSelection(t *testing.T) {
	est := estimation(0.5,
		"cycle_activity.stalls_total", 0.50,
		"uops_retired.stall_cycles", 0.51,
		"longest_lat_cache.miss", 0.56,
		"br_misp_retired.all_branches", 0.90, // outside +15%
	)
	r, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pool) != 3 {
		t.Fatalf("pool = %d members, want 3 (the +15%% band)", len(r.Pool))
	}
	if r.Pool[0].Slack != 0 {
		t.Errorf("binding metric slack = %g, want 0", r.Pool[0].Slack)
	}
	if r.Pool[2].Slack < 0.1 || r.Pool[2].Slack > 0.15 {
		t.Errorf("third member slack = %g", r.Pool[2].Slack)
	}
}

func TestPoolCap(t *testing.T) {
	est := estimation(1,
		"m1", 1.0, "m2", 1.0, "m3", 1.0, "m4", 1.0, "m5", 1.0,
	)
	r, err := Analyze(est, Options{MaxPool: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pool) != 3 {
		t.Errorf("pool = %d, want capped at 3", len(r.Pool))
	}
}

func TestClustering(t *testing.T) {
	est := estimation(0.5,
		"a", 0.500,
		"b", 0.502, // same cluster as a
		"c", 0.540, // new cluster
		"d", 0.545, // same cluster as c
	)
	r, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", r.Clusters)
	}
	if r.Pool[0].Cluster != r.Pool[1].Cluster {
		t.Error("a and b should share a cluster")
	}
	if r.Pool[1].Cluster == r.Pool[2].Cluster {
		t.Error("b and c should be in different clusters")
	}
	if r.Pool[2].Cluster != r.Pool[3].Cluster {
		t.Error("c and d should share a cluster")
	}
}

func TestAreaSharesAndPrimary(t *testing.T) {
	est := estimation(0.5,
		"cycle_activity.cycles_mem_any", 0.50, // Memory
		"cycle_activity.cycles_l1d_miss", 0.51, // Memory
		"cycle_activity.stalls_total", 0.52, // Core
	)
	r, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.PrimaryArea != pmu.AreaMemory {
		t.Errorf("primary = %v, want Memory", r.PrimaryArea)
	}
	if got := r.AreaShares[pmu.AreaMemory]; math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("memory share = %g, want 2/3", got)
	}
}

func TestUnknownMetricGetsNoArea(t *testing.T) {
	est := estimation(0.5, "custom.metric", 0.5)
	r, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pool[0].Area != pmu.AreaNone {
		t.Errorf("unknown metric area = %v, want none", r.Pool[0].Area)
	}
	if r.Pool[0].Abbr != "custom.metric" {
		t.Errorf("unknown metric abbr fallback = %q", r.Pool[0].Abbr)
	}
}

func TestHeadroom(t *testing.T) {
	r, err := Analyze(estimation(0.5, "m", 0.6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Headroom-0.2) > 1e-9 {
		t.Errorf("headroom = %g, want 0.2", r.Headroom)
	}
	r, err = Analyze(estimation(0, "m", 0.6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r.Headroom) {
		t.Errorf("headroom with zero measured = %g, want NaN", r.Headroom)
	}
}

func TestRender(t *testing.T) {
	cases := []struct {
		measured float64
		estimate float64
		want     string
	}{
		{0.70, 0.60, "exceeds the learned bound"},
		{0.59, 0.60, "runs at its learned bound"},
		{0.30, 0.60, "below its learned bound"},
	}
	for _, c := range cases {
		r, err := Analyze(estimation(c.measured, "cycle_activity.stalls_total", c.estimate), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, c.want) {
			t.Errorf("measured %.2f vs bound %.2f: advice missing %q in:\n%s", c.measured, c.estimate, c.want, out)
		}
		if !strings.Contains(out, "CS.1") {
			t.Errorf("render missing abbreviation:\n%s", out)
		}
	}
}

func TestSortPoolByArea(t *testing.T) {
	est := estimation(0.5,
		"cycle_activity.stalls_total", 0.50, // Core
		"cycle_activity.cycles_mem_any", 0.51, // Memory
		"exe_activity.1_ports_util", 0.52, // Core
	)
	r, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sorted := r.SortPoolByArea()
	if len(sorted) != 3 {
		t.Fatal("pool size changed")
	}
	// Memory < Core in the Area enum ordering.
	if sorted[0].Area != pmu.AreaMemory {
		t.Errorf("first area = %v", sorted[0].Area)
	}
	if sorted[1].Area != pmu.AreaCore || sorted[2].Area != pmu.AreaCore {
		t.Error("core metrics should be grouped")
	}
	if sorted[1].Estimate > sorted[2].Estimate {
		t.Error("within-area order should be ascending estimate")
	}
	// The original pool must be untouched.
	if r.Pool[0].Metric != "cycle_activity.stalls_total" {
		t.Error("SortPoolByArea mutated the report")
	}
}

func TestAnalyzeWithModelDirections(t *testing.T) {
	// Train a model whose peak is at I = 10; workloads left/right of it
	// get direction hints.
	var d core.Dataset
	for _, p := range []struct{ i, y float64 }{{1, 1}, {10, 3}, {100, 1}} {
		w := p.y
		d.Add(core.Sample{Metric: "cycle_activity.stalls_total", T: 1, W: w, M: w / p.i})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wl core.Dataset
	wl.Add(core.Sample{Metric: "cycle_activity.stalls_total", T: 1, W: 2, M: 1}) // I = 2, left of peak
	est, err := ens.Estimate(wl)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(est, Options{Model: ens})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pool[0].HasRegion || r.Pool[0].Region != core.RegionLeft {
		t.Errorf("expected left-region classification: %+v", r.Pool[0])
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reduce event rate") {
		t.Errorf("render missing direction hint:\n%s", buf.String())
	}
	// Without a model, no region info.
	r2, err := Analyze(est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Pool[0].HasRegion {
		t.Error("region should be absent without a model")
	}
}

func TestWhatIfAnalysis(t *testing.T) {
	est := estimation(0.5, "a", 0.50, "b", 0.70, "c", 0.90)
	ws := WhatIfAnalysis(est, 3)
	if len(ws) != 3 {
		t.Fatalf("entries = %d", len(ws))
	}
	// Relieving the binding metric exposes the second-lowest bound.
	if ws[0].Metric != "a" {
		t.Errorf("best relief = %s, want a", ws[0].Metric)
	}
	if math.Abs(ws[0].NewBound-0.70) > 1e-12 {
		t.Errorf("new bound = %g, want 0.70", ws[0].NewBound)
	}
	if math.Abs(ws[0].Uplift-0.4) > 1e-9 {
		t.Errorf("uplift = %g, want 0.4", ws[0].Uplift)
	}
	// Relieving non-binding metrics buys nothing.
	for _, w := range ws[1:] {
		if w.Uplift != 0 {
			t.Errorf("%s uplift = %g, want 0", w.Metric, w.Uplift)
		}
	}
	best, ok := BestSingleRelief(est)
	if !ok || best.Metric != "a" {
		t.Errorf("BestSingleRelief = %+v, %v", best, ok)
	}
}

func TestWhatIfTiedBound(t *testing.T) {
	// Two metrics tied at the minimum: no single relief helps.
	est := estimation(0.5, "a", 0.50, "b", 0.50, "c", 0.90)
	if _, ok := BestSingleRelief(est); ok {
		t.Error("tied bound should report no single relief")
	}
	ws := WhatIfAnalysis(est, 2)
	if ws[0].Uplift != 0 {
		t.Errorf("tied uplift = %g, want 0", ws[0].Uplift)
	}
}

func TestWhatIfDegenerate(t *testing.T) {
	if got := WhatIfAnalysis(nil, 5); got != nil {
		t.Error("nil estimation should yield nil")
	}
	est := estimation(0.5, "only", 0.5)
	ws := WhatIfAnalysis(est, 5)
	if len(ws) != 1 || ws[0].Uplift != 0 {
		t.Errorf("single-metric what-if = %+v", ws)
	}
}
