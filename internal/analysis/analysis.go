// Package analysis turns a raw SPIRE estimation into an interpreted
// bottleneck report, implementing the paper's §III-C guidance:
// "we suggest considering a range of low-valued metrics to all be
// potential bottlenecks. Factors such as measurement noise and imperfect
// modeling may cause some uncertainty in these values. Further,
// associations between metrics, such as causal and confounded
// relationships, can complicate subsequent testing and analyses."
//
// Concretely: it selects a pool of near-minimum metrics rather than a
// single winner, aggregates the pool by microarchitecture area, flags
// clusters of metrics with indistinguishable estimates (likely measuring
// one underlying cause), and reports the throughput headroom implied by
// the ensemble bound.
package analysis

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/report"
)

// Options tunes pool selection.
type Options struct {
	// PoolTolerance admits metrics whose estimate is within this
	// relative distance of the minimum (default 0.15, i.e. +15%).
	PoolTolerance float64
	// MaxPool caps the pool size (default 10, the paper's table width).
	MaxPool int
	// ClusterTolerance groups pool metrics whose estimates differ by
	// less than this relative amount into one confounded cluster
	// (default 0.02).
	ClusterTolerance float64
	// Model, when set, lets the analysis classify each pool metric's
	// operating region against its learned roofline, yielding an
	// improvement direction per finding.
	Model *core.Ensemble
}

func (o *Options) setDefaults() {
	if o.PoolTolerance <= 0 {
		o.PoolTolerance = 0.15
	}
	if o.MaxPool <= 0 {
		o.MaxPool = 10
	}
	if o.ClusterTolerance <= 0 {
		o.ClusterTolerance = 0.02
	}
}

// Finding is one pool member.
type Finding struct {
	Metric   string
	Abbr     string
	Area     pmu.Area
	Estimate float64
	// Slack is estimate/minEstimate - 1: zero for the binding metric,
	// growing with distance from the front of the ranking.
	Slack float64
	// Cluster indexes the confounded group this finding belongs to
	// (findings in the same cluster have statistically
	// indistinguishable estimates).
	Cluster int
	// Region is where the workload operates on this metric's roofline
	// (only set when Options.Model was provided): left of the peak
	// means the event behaves as harmful here — reducing its rate
	// should raise the bound.
	Region core.Region
	// HasRegion reports whether Region is meaningful.
	HasRegion bool
}

// Report is the interpreted analysis.
type Report struct {
	// Measured and Estimate are the workload's observed throughput and
	// SPIRE's attainable bound.
	Measured float64
	Estimate float64
	// Headroom is Estimate/Measured - 1 (negative when the workload
	// already exceeds the learned bound — a sign the model's training
	// did not cover this regime).
	Headroom float64
	// Pool is the candidate-bottleneck pool, ascending by estimate.
	Pool []Finding
	// Clusters is the number of distinct confounded groups in the pool:
	// a rough count of independent bottleneck hypotheses to test.
	Clusters int
	// AreaShares is the fraction of pool members per TMA area.
	AreaShares map[pmu.Area]float64
	// PrimaryArea is the area with the largest share (ties resolve to
	// the area of the lowest-estimate finding).
	PrimaryArea pmu.Area
}

// ErrEmptyEstimation is returned for estimations with no metrics.
var ErrEmptyEstimation = errors.New("analysis: estimation has no metrics")

// Analyze interprets an estimation.
func Analyze(est *core.Estimation, opts Options) (*Report, error) {
	opts.setDefaults()
	if est == nil || len(est.PerMetric) == 0 {
		return nil, ErrEmptyEstimation
	}
	minEst := est.PerMetric[0].MeanEstimate
	r := &Report{
		Measured:   est.MeasuredThroughput,
		Estimate:   est.MaxThroughput,
		AreaShares: make(map[pmu.Area]float64),
	}
	if r.Measured > 0 && !math.IsNaN(r.Measured) {
		r.Headroom = r.Estimate/r.Measured - 1
	} else {
		r.Headroom = math.NaN()
	}

	for _, m := range est.PerMetric {
		if len(r.Pool) >= opts.MaxPool {
			break
		}
		slack := 0.0
		if minEst > 0 {
			slack = m.MeanEstimate/minEst - 1
		} else {
			slack = m.MeanEstimate - minEst
		}
		if slack > opts.PoolTolerance && len(r.Pool) > 0 {
			break
		}
		f := Finding{
			Metric:   m.Metric,
			Estimate: m.MeanEstimate,
			Slack:    slack,
			Abbr:     m.Metric,
			Area:     pmu.AreaNone,
		}
		if ev, ok := pmu.Lookup(m.Metric); ok {
			f.Abbr = ev.Abbr
			f.Area = ev.Area
		}
		if opts.Model != nil {
			if rl := opts.Model.Rooflines[m.Metric]; rl != nil {
				f.Region = rl.Region(m.MeanIntensity)
				f.HasRegion = true
			}
		}
		r.Pool = append(r.Pool, f)
	}

	// Cluster pool members whose estimates are indistinguishable: walk
	// the ascending list and break a cluster when the relative gap to
	// the previous member exceeds the tolerance.
	cluster := 0
	for i := range r.Pool {
		if i > 0 {
			prev := r.Pool[i-1].Estimate
			gap := 0.0
			if prev > 0 {
				gap = r.Pool[i].Estimate/prev - 1
			} else {
				gap = r.Pool[i].Estimate - prev
			}
			if gap > opts.ClusterTolerance {
				cluster++
			}
		}
		r.Pool[i].Cluster = cluster
	}
	r.Clusters = cluster + 1

	for _, f := range r.Pool {
		r.AreaShares[f.Area] += 1 / float64(len(r.Pool))
	}
	best := r.Pool[0].Area
	bestShare := r.AreaShares[best]
	for area, share := range r.AreaShares {
		if share > bestShare {
			best, bestShare = area, share
		}
	}
	r.PrimaryArea = best
	return r, nil
}

// Render writes a human-readable summary.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "measured throughput %.3f; SPIRE attainable bound %.3f", r.Measured, r.Estimate); err != nil {
		return err
	}
	if !math.IsNaN(r.Headroom) {
		if _, err := fmt.Fprintf(w, " (headroom %+.0f%%)", 100*r.Headroom); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nprimary bottleneck area: %s; %d candidate metrics in %d independent clusters\n\n",
		r.PrimaryArea, len(r.Pool), r.Clusters); err != nil {
		return err
	}
	t := report.Table{
		Title:   "Candidate bottleneck pool (ascending bound; same cluster = likely one cause)",
		Headers: []string{"Cluster", "Abbr", "Metric", "Bound", "Slack", "Area", "Direction"},
	}
	for _, f := range r.Pool {
		dir := ""
		if f.HasRegion {
			switch f.Region {
			case core.RegionLeft:
				dir = "reduce event rate"
			case core.RegionRight:
				dir = "event accompanies speed"
			default:
				dir = "at model peak"
			}
		}
		t.AddRow(
			fmt.Sprintf("#%d", f.Cluster+1),
			f.Abbr,
			f.Metric,
			fmt.Sprintf("%.3f", f.Estimate),
			fmt.Sprintf("%+.1f%%", 100*f.Slack),
			f.Area.String(),
			dir,
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if math.IsNaN(r.Headroom) {
		return nil
	}
	var advice string
	switch {
	case r.Headroom < -0.05:
		advice = "the workload exceeds the learned bound: the training set likely under-covers this regime — retrain with more representative samples"
	case r.Headroom < 0.10:
		advice = "the workload runs at its learned bound: improving it requires relieving the pooled metrics above"
	default:
		advice = "the workload runs below its learned bound: profile for phases or inputs the samples under-represent"
	}
	_, err := fmt.Fprintf(w, "\n%s\n", advice)
	return err
}

// SortPoolByArea returns the pool grouped by area then ascending
// estimate, a convenient order for follow-up investigation.
func (r *Report) SortPoolByArea() []Finding {
	out := make([]Finding, len(r.Pool))
	copy(out, r.Pool)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		return out[i].Estimate < out[j].Estimate
	})
	return out
}
