package analysis

import (
	"sort"

	"spire/internal/core"
)

// WhatIf is one counterfactual: the ensemble bound if a single metric's
// constraint were fully relieved (its roofline no longer binds).
type WhatIf struct {
	Metric string
	// NewBound is the ensemble estimate without this metric: the
	// minimum over all other per-metric means.
	NewBound float64
	// Uplift is NewBound/CurrentBound - 1: how much headroom relieving
	// only this metric exposes. Zero means another metric binds at the
	// same level, so fixing this one alone buys nothing — the paper's
	// point about proceeding with a pool of low-valued metrics.
	Uplift float64
}

// WhatIfAnalysis ranks single-metric reliefs by their exposed uplift.
// Only pool-adjacent metrics are worth relieving: by construction, the
// k-th entry's NewBound equals the (k+1)-th lowest per-metric mean, so
// the list is computed for the lowest maxMetrics metrics.
func WhatIfAnalysis(est *core.Estimation, maxMetrics int) []WhatIf {
	if est == nil || len(est.PerMetric) == 0 {
		return nil
	}
	if maxMetrics <= 0 || maxMetrics > len(est.PerMetric) {
		maxMetrics = len(est.PerMetric)
	}
	cur := est.MaxThroughput
	var out []WhatIf
	for i := 0; i < maxMetrics; i++ {
		m := est.PerMetric[i]
		// The bound without metric i is the minimum of the others;
		// with an ascending list that is PerMetric[0] unless i == 0.
		newBound := est.PerMetric[0].MeanEstimate
		if i == 0 {
			if len(est.PerMetric) > 1 {
				newBound = est.PerMetric[1].MeanEstimate
			} else {
				// The only metric: the model gives no other constraint.
				newBound = m.MeanEstimate
			}
		}
		w := WhatIf{Metric: m.Metric, NewBound: newBound}
		if cur > 0 {
			w.Uplift = newBound/cur - 1
		}
		out = append(out, w)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Uplift > out[b].Uplift })
	return out
}

// BestSingleRelief returns the metric whose relief exposes the most
// headroom, with ok=false when no relief helps (a multi-metric tie at
// the bound).
func BestSingleRelief(est *core.Estimation) (WhatIf, bool) {
	ws := WhatIfAnalysis(est, 3)
	if len(ws) == 0 || ws[0].Uplift <= 0 {
		return WhatIf{}, false
	}
	return ws[0], true
}
