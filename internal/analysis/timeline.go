package analysis

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/pmu"
	"spire/internal/report"
)

// TimelinePoint is one collection window's verdict: the measured
// throughput, the SPIRE bound, and the binding metric during that window.
// A sequence of points exposes workload phases — the paper warns that
// over- or under-represented phases skew whole-run analysis (§III-A),
// and a timeline makes such phases visible.
type TimelinePoint struct {
	Window    int
	Measured  float64
	Estimate  float64
	TopMetric string
	TopAbbr   string
	Area      pmu.Area
}

// ErrNoWindows is returned when the dataset carries no window tags.
var ErrNoWindows = errors.New("analysis: dataset has no window information")

// Timeline estimates each collection window independently against the
// trained ensemble. Windows appear in ascending order; windows whose
// samples all miss the model are skipped.
func Timeline(ens *core.Ensemble, d core.Dataset) ([]TimelinePoint, error) {
	byWindow := make(map[int][]core.Sample)
	for _, s := range d.Samples {
		byWindow[s.Window] = append(byWindow[s.Window], s)
	}
	if len(byWindow) == 0 || (len(byWindow) == 1 && len(byWindow[0]) > 0) {
		// Only the untagged window exists: no phase information.
		if _, untaggedOnly := byWindow[0]; untaggedOnly && len(byWindow) == 1 {
			return nil, ErrNoWindows
		}
	}
	windows := make([]int, 0, len(byWindow))
	for w := range byWindow {
		windows = append(windows, w)
	}
	sort.Ints(windows)

	eng := engine.Default()
	var out []TimelinePoint
	for _, w := range windows {
		var wd core.Dataset
		wd.Add(byWindow[w]...)
		est, err := eng.Estimate(context.Background(), ens, wd, core.EstimateOptions{})
		if err != nil {
			continue
		}
		p := TimelinePoint{
			Window:   w,
			Measured: est.MeasuredThroughput,
			Estimate: est.MaxThroughput,
		}
		if len(est.PerMetric) > 0 {
			p.TopMetric = est.PerMetric[0].Metric
			p.TopAbbr = p.TopMetric
			if ev, ok := pmu.Lookup(p.TopMetric); ok {
				p.TopAbbr = ev.Abbr
				p.Area = ev.Area
			}
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, core.ErrNoSamples
	}
	return out, nil
}

// PhaseChanges returns the windows at which the binding metric switches —
// a quick phase-boundary detector.
func PhaseChanges(tl []TimelinePoint) []int {
	var out []int
	for i := 1; i < len(tl); i++ {
		if tl[i].TopMetric != tl[i-1].TopMetric {
			out = append(out, tl[i].Window)
		}
	}
	return out
}

// RenderTimeline prints the timeline as a table plus a one-line phase
// summary.
func RenderTimeline(w io.Writer, tl []TimelinePoint) error {
	t := report.Table{
		Title:   "Per-window bottleneck timeline",
		Headers: []string{"Window", "Measured", "Bound", "Binding metric", "Area"},
	}
	for _, p := range tl {
		t.AddRow(
			fmt.Sprintf("%d", p.Window),
			fmt.Sprintf("%.3f", p.Measured),
			fmt.Sprintf("%.3f", p.Estimate),
			p.TopAbbr,
			p.Area.String(),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	changes := PhaseChanges(tl)
	if len(changes) == 0 {
		_, err := fmt.Fprintln(w, "single-phase workload: the binding metric never changes")
		return err
	}
	_, err := fmt.Fprintf(w, "%d phase changes at windows %v\n", len(changes), changes)
	return err
}
