package analysis

import (
	"bytes"
	"strings"
	"testing"

	"spire/internal/core"
)

// trainModel builds a two-metric ensemble: "stall" bounds throughput
// rising with I, "miss" likewise but with a different scale.
func trainModel(t *testing.T) *core.Ensemble {
	t.Helper()
	var d core.Dataset
	for i := 1.0; i <= 64; i *= 2 {
		d.Add(
			core.Sample{Metric: "stall", T: 100, W: 100 * 3 * i / (i + 8), M: 100 * 3 / (i + 8)},
			core.Sample{Metric: "miss", T: 100, W: 100 * 2 * i / (i + 2), M: 100 * 2 / (i + 2)},
		)
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// windowed creates one window's samples with chosen intensities.
func windowed(window int, iStall, iMiss float64) []core.Sample {
	const T, W = 100.0, 150.0
	return []core.Sample{
		{Metric: "stall", T: T, W: W, M: W / iStall, Window: window},
		{Metric: "miss", T: T, W: W, M: W / iMiss, Window: window},
	}
}

func TestTimelineDetectsPhases(t *testing.T) {
	ens := trainModel(t)
	var d core.Dataset
	// Phase 1 (windows 1-2): stall-bound (low stall intensity).
	d.Add(windowed(1, 2, 50)...)
	d.Add(windowed(2, 2, 50)...)
	// Phase 2 (windows 3-4): miss-bound.
	d.Add(windowed(3, 50, 1)...)
	d.Add(windowed(4, 50, 1)...)

	tl, err := Timeline(ens, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 4 {
		t.Fatalf("timeline = %d points, want 4", len(tl))
	}
	if tl[0].TopMetric != "stall" || tl[1].TopMetric != "stall" {
		t.Errorf("phase 1 should be stall-bound: %q %q", tl[0].TopMetric, tl[1].TopMetric)
	}
	if tl[2].TopMetric != "miss" || tl[3].TopMetric != "miss" {
		t.Errorf("phase 2 should be miss-bound: %q %q", tl[2].TopMetric, tl[3].TopMetric)
	}
	changes := PhaseChanges(tl)
	if len(changes) != 1 || changes[0] != 3 {
		t.Errorf("phase changes = %v, want [3]", changes)
	}
}

func TestTimelineOrdering(t *testing.T) {
	ens := trainModel(t)
	var d core.Dataset
	// Insert windows out of order.
	d.Add(windowed(7, 2, 50)...)
	d.Add(windowed(3, 2, 50)...)
	d.Add(windowed(5, 2, 50)...)
	tl, err := Timeline(ens, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 || tl[0].Window != 3 || tl[1].Window != 5 || tl[2].Window != 7 {
		t.Errorf("windows not ascending: %+v", tl)
	}
}

func TestTimelineNoWindows(t *testing.T) {
	ens := trainModel(t)
	var d core.Dataset
	d.Add(core.Sample{Metric: "stall", T: 100, W: 100, M: 50}) // Window 0
	if _, err := Timeline(ens, d); err != ErrNoWindows {
		t.Errorf("err = %v, want ErrNoWindows", err)
	}
}

func TestTimelineUnknownMetricsSkipped(t *testing.T) {
	ens := trainModel(t)
	var d core.Dataset
	d.Add(core.Sample{Metric: "mystery", T: 100, W: 100, M: 50, Window: 1})
	d.Add(windowed(2, 2, 50)...)
	tl, err := Timeline(ens, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 1 || tl[0].Window != 2 {
		t.Errorf("timeline = %+v, want just window 2", tl)
	}
}

func TestRenderTimeline(t *testing.T) {
	ens := trainModel(t)
	var d core.Dataset
	d.Add(windowed(1, 2, 50)...)
	d.Add(windowed(2, 50, 1)...)
	tl, err := Timeline(ens, d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, tl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"timeline", "phase changes at windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Single-phase rendering.
	buf.Reset()
	if err := RenderTimeline(&buf, tl[:1]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "single-phase") {
		t.Errorf("expected single-phase notice:\n%s", buf.String())
	}
}
