package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"spire/internal/core"
	"spire/internal/report"
	"spire/internal/waitgraph"
)

// Combined on-CPU/off-CPU analysis. The roofline estimation explains
// what bounds a workload *while it runs*; the wait-for graph explains
// why it is *not running*. Combine puts both on one currency — the
// fraction of total thread wall time each candidate explains — and
// ranks them together, so "lock convoy on q" and "DRAM bandwidth bound"
// compete in a single list.

// maxRooflineRanked caps how many roofline metrics enter the combined
// ranking; deeper entries explain strictly less on-CPU time.
const maxRooflineRanked = 5

// Combine partitions wall time using the scheduler events and merges
// wait-graph verdicts with the roofline estimation's metric ranking
// into one core.CombinedReport. It returns (nil, nil) when events is
// empty or carries no usable event; est may be nil (no counter samples
// were collected), in which case the ranking holds wait verdicts only.
func Combine(est *core.Estimation, events []core.SchedEvent) (*core.CombinedReport, error) {
	if len(events) == 0 {
		return nil, nil
	}
	g := waitgraph.Build(events)
	p := g.Partition()
	if p.Threads == 0 {
		return nil, nil
	}
	rep := &core.CombinedReport{
		Partition: p,
		Waits:     g.Verdicts(),
		Knot:      len(g.Knots) > 0,
	}
	for i := range rep.Waits {
		v := rep.Waits[i]
		rep.Ranked = append(rep.Ranked, core.CombinedBottleneck{
			Source: "wait",
			Score:  v.Share,
			Detail: waitDetail(v),
			Wait:   &rep.Waits[i],
		})
	}
	// Roofline side: the binding metric explains the whole on-CPU
	// share; looser metrics explain proportionally less (their bound is
	// further from the measured ceiling).
	if est != nil && len(est.PerMetric) > 0 && p.Wall > 0 {
		onShare := p.OnCPU / p.Wall
		for i, m := range est.PerMetric {
			if i >= maxRooflineRanked {
				break
			}
			score := onShare
			if m.MeanEstimate > 0 && est.MaxThroughput > 0 {
				score = onShare * (est.MaxThroughput / m.MeanEstimate)
			}
			if math.IsNaN(score) || math.IsInf(score, 0) {
				continue
			}
			rep.Ranked = append(rep.Ranked, core.CombinedBottleneck{
				Source: "roofline",
				Score:  score,
				Detail: fmt.Sprintf("on-CPU: %s bounds throughput at %.3f", m.Metric, m.MeanEstimate),
				Metric: m.Metric,
			})
		}
	}
	sort.SliceStable(rep.Ranked, func(i, j int) bool {
		a, b := rep.Ranked[i], rep.Ranked[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Detail < b.Detail
	})
	return rep, nil
}

// waitDetail renders a one-line description of a wait verdict.
func waitDetail(v core.WaitVerdict) string {
	switch v.Kind {
	case "lock":
		return fmt.Sprintf("off-CPU: lock %q contended (%d waiters, %.0f cycles waited)", v.Object, v.Waiters, v.Wait)
	case "io":
		return fmt.Sprintf("off-CPU: device %q saturated (%d waiters, %.0f cycles waited)", v.Object, v.Waiters, v.Wait)
	case "runnable":
		return fmt.Sprintf("off-CPU: run-queue pressure (%d threads runnable but not running, %.0f cycles)", v.Waiters, v.Wait)
	case "knot":
		return fmt.Sprintf("off-CPU: knot — %s wait only on each other across locks (%.0f cycles)", v.Object, v.Wait)
	default:
		return fmt.Sprintf("off-CPU: %s %s (%.0f cycles)", v.Kind, v.Object, v.Wait)
	}
}

// RenderCombined writes the human-readable partition and merged
// ranking, in the same table style Report.Render uses.
func RenderCombined(w io.Writer, r *core.CombinedReport) error {
	if r == nil {
		return nil
	}
	p := r.Partition
	if _, err := fmt.Fprintf(w,
		"time partition over %d threads: wall %.0f = on-CPU %.0f (%.1f%%) + off-CPU %.0f (%.1f%%)\n",
		p.Threads, p.Wall, p.OnCPU, 100*shareOf(p.OnCPU, p.Wall), p.OffCPU, 100*p.OffShare()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"off-CPU breakdown: lock %.0f, io %.0f, runnable %.0f\n",
		p.LockWait, p.IOWait, p.RunnableWait); err != nil {
		return err
	}
	if r.Knot {
		if _, err := fmt.Fprintf(w, "wait-for graph contains a knot: a thread group is waiting only on itself\n"); err != nil {
			return err
		}
	}
	if len(r.Ranked) == 0 {
		return nil
	}
	t := report.Table{
		Title:   "Combined bottleneck ranking (share of wall time explained)",
		Headers: []string{"Rank", "Source", "Share", "Detail"},
	}
	for i, b := range r.Ranked {
		t.AddRow(
			fmt.Sprintf("#%d", i+1),
			b.Source,
			fmt.Sprintf("%.1f%%", 100*b.Score),
			b.Detail,
		)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return t.Render(w)
}

func shareOf(x, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return x / wall
}
