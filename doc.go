// Package spire is a from-scratch Go reproduction of "SPIRE: Inferring
// Hardware Bottlenecks from Performance Counter Data" (Wendt, Ketkar,
// Bertacco — DATE 2025).
//
// SPIRE (Statistical Piecewise Linear Roofline Ensemble) estimates the
// maximum throughput a workload can attain on a processor from hardware
// performance counter samples, and ranks the counters by how strongly
// they bound the workload: the lowest-bounding metrics are the likely
// microarchitectural bottlenecks.
//
// The repository contains both the model and everything the paper's
// evaluation depends on, rebuilt as simulation substrates:
//
//   - internal/core — the SPIRE model: samples, per-metric piecewise
//     linear rooflines (convex-hull left fit, Pareto + Dijkstra right
//     fit), the min-of-time-weighted-means ensemble, and analysis.
//   - internal/sim, internal/mem, internal/uarch, internal/pmu — a
//     cycle-approximate out-of-order CPU core with a Skylake-SP-like
//     configuration, a three-level cache hierarchy with DRAM bandwidth
//     limits, and a perf-style event architecture.
//   - internal/perfstat — perf-stat-style interval sampling with counter
//     multiplexing and scaling.
//   - internal/workloads — 27 synthetic kernels standing in for the
//     paper's Phoronix HPC suite (Table I).
//   - internal/tma — Top-Down Microarchitecture Analysis, the VTune
//     baseline the paper validates against.
//   - internal/roofline — the classic roofline model SPIRE generalizes.
//   - internal/experiments — orchestration that regenerates every table
//     and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package spire
