// Characterize: empirical machine discovery, the measurement side of
// roofline practice. Probe kernels measure peak issue rate, the cache and
// TLB capacity knees, load-use latencies, the MSHR-limited single-stream
// bandwidth wall, and the branch mispredict cost — for two very different
// cores — without reading any configuration. On real hardware the same
// probes (STREAM, pointer chases, branch loops) calibrate real rooflines.
package main

import (
	"fmt"
	"log"

	"spire/internal/calibrate"
	"spire/internal/uarch"
)

func main() {
	for _, cfg := range []*uarch.Config{uarch.Default(), uarch.LittleCore()} {
		m, err := calibrate.Discover(cfg, calibrate.Options{Insts: 50_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s", cfg.Name, m.Report(cfg))
		if err := m.Validate(cfg); err != nil {
			log.Fatalf("characterization inconsistent with configuration: %v", err)
		}
		fmt.Println("characterization consistent with the configured core")
		fmt.Println()
	}
	fmt.Println("note the little core's lower peak, earlier knees, and lower MSHR wall —")
	fmt.Println("a SPIRE model trained on one core does not transfer to the other, which")
	fmt.Println("is why SPIRE retrains from counters on every machine (paper §III).")
}
