// Compare-tma: the paper's validation methodology (§V) on one workload —
// run it once, produce both a SPIRE bottleneck ranking and a VTune-style
// Top-Down Microarchitecture Analysis from the same counters, and show
// them side by side.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/perfstat"
	"spire/internal/pmu"
	"spire/internal/report"
	"spire/internal/sim"
	"spire/internal/tma"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

func main() {
	target := flag.String("workload", "tnn", "workload to analyze (perfstat -list)")
	flag.Parse()

	// Train a model on a compact slice of the training suite.
	var train core.Dataset
	for _, name := range []string{
		"scikit-featexp", "graph500", "remhos", "faiss-sift1m",
		"qmcpack", "parboil-mri", "arrayfire-blas", "openvino-age",
	} {
		data := mustCollect(name)
		train.Merge(data)
	}
	model, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		log.Fatal(err)
	}

	// Measure the target once; SPIRE consumes the multiplexed samples,
	// TMA the whole-run counter totals.
	spec, err := workloads.ByName(*target)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.1), 7)
	if err != nil {
		log.Fatal(err)
	}
	data, rep, err := perfstat.Collect(s, *target, perfstat.Options{
		IntervalCycles: 25_000,
		MaxCycles:      1_500_000,
		Multiplex:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := s.PMU().Snapshot()

	// Baseline: Top-Down Analysis.
	bd, err := tma.Analyze(counts, uarch.Default().IssueWidth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s (IPC %.2f) ==\n\n", *target, rep.IPC)
	fmt.Printf("TMA (VTune-style): %s\n", bd)
	fmt.Printf("TMA main bottleneck: %s\n\n", bd.MainBottleneck())

	// SPIRE: metric ranking, via the shared estimation engine.
	est, err := engine.Default().Estimate(context.Background(), model, data, core.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	t := report.Table{
		Title:   "SPIRE ranking (ascending attainable-IPC estimate)",
		Headers: []string{"Rank", "Abbr", "Mean est.", "TMA area"},
	}
	agree := 0
	top := est.TopMetrics(10)
	for i, m := range top {
		ev, _ := pmu.Lookup(m.Metric)
		t.AddRow(fmt.Sprintf("%d", i+1), ev.Abbr, fmt.Sprintf("%.2f", m.MeanEstimate), ev.Area.String())
		if ev.Area == bd.MainBottleneck() {
			agree++
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d top SPIRE metrics share TMA's main bottleneck area\n", agree, len(top))
}

func mustCollect(name string) core.Dataset {
	spec, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.1), 7)
	if err != nil {
		log.Fatal(err)
	}
	data, _, err := perfstat.Collect(s, name, perfstat.Options{
		IntervalCycles: 25_000,
		MaxCycles:      1_500_000,
		Multiplex:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return data
}
