// Bottleneck-hunt: the paper's full workflow end to end, scaled down —
// simulate HPC-style workloads on the modeled CPU, sample its counters
// with perf-stat-style multiplexing, train a SPIRE ensemble on the
// training set, and hunt for bottlenecks in an unseen workload (§IV-V).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/perfstat"
	"spire/internal/pmu"
	"spire/internal/report"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

const scale = 0.1 // keep the example snappy; raise for better models

func collect(name string) (core.Dataset, perfstat.Report) {
	spec, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(scale), 42)
	if err != nil {
		log.Fatal(err)
	}
	data, rep, err := perfstat.Collect(s, name, perfstat.Options{
		IntervalCycles: 25_000,
		MaxCycles:      1_500_000,
		Multiplex:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return data, rep
}

func main() {
	// 1. Train on a slice of the training suite spanning all four
	//    bottleneck families (the full suite has 23; see cmd/spire-bench
	//    for the complete experiment).
	trainingSet := []string{
		"llamafile", "scikit-featexp", // front-end flavoured
		"numenta-nab", "graph500", // bad speculation
		"remhos", "faiss-sift1m", "onednn-ip3d", // memory
		"qmcpack", "parboil-mri", "arrayfire-blas", // core / high IPC
	}
	var train core.Dataset
	for _, name := range trainingSet {
		data, rep := collect(name)
		fmt.Printf("trained on %-16s IPC %.2f, %d samples\n", name, rep.IPC, data.Len())
		train.Merge(data)
	}
	model, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nensemble: %d metric rooflines\n\n", len(model.Rooflines))

	// 2. Hunt: analyze the held-out memory-bound test workload.
	target := "onnx"
	data, rep := collect(target)
	est, err := engine.Default().Estimate(context.Background(), model, data, core.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzing %s: measured IPC %.2f, SPIRE attainable estimate %.2f\n\n",
		target, rep.IPC, est.MaxThroughput)

	t := report.Table{
		Title:   "Candidate bottlenecks for " + target,
		Headers: []string{"Rank", "Abbr", "Metric", "Mean est.", "TMA area"},
	}
	for i, m := range est.TopMetrics(8) {
		ev, _ := pmu.Lookup(m.Metric)
		t.AddRow(fmt.Sprintf("%d", i+1), ev.Abbr, m.Metric,
			fmt.Sprintf("%.2f", m.MeanEstimate), ev.Area.String())
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpect memory-area metrics (L1.x, M, L3) to dominate this ranking")
}
