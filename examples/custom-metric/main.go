// Custom-metric: SPIRE is architecture-agnostic — any measurable quantity
// can be a metric (paper §III: "a sample is associated with a single
// performance metric"). This example models a custom accelerator-style
// counter ("dma_descriptors") alongside a handcrafted workload kernel,
// shows how to define your own isa.Program, restrict sampling to a chosen
// event subset, and inspect a learned roofline directly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"spire/internal/core"
	"spire/internal/isa"
	"spire/internal/perfstat"
	"spire/internal/pmu"
	"spire/internal/report"
	"spire/internal/sim"
	"spire/internal/uarch"
)

// dmaKernel is a custom workload: bursts of streaming loads ("DMA
// descriptors") separated by compute. Not part of the built-in suite —
// any type implementing isa.Program plugs into the simulator.
type dmaKernel struct {
	bursts  int
	burstSz int
	compute int
	pos     int
	rng     *rand.Rand
}

func (k *dmaKernel) Name() string { return "dma-kernel" }
func (k *dmaKernel) Reset(seed int64) {
	k.pos = 0
	k.rng = rand.New(rand.NewSource(seed))
}

func (k *dmaKernel) Next() (isa.Inst, bool) {
	period := k.burstSz + k.compute
	total := k.bursts * period
	if k.pos >= total {
		return isa.Inst{}, false
	}
	i := k.pos % period
	k.pos++
	if i < k.burstSz {
		// Descriptor fetch: strided loads over a DRAM-sized buffer.
		return isa.Inst{
			PC: 0x9000, Op: isa.OpLoad, Dst: 1, Size: 8,
			Addr: 0x4000_0000 + uint64(k.rng.Intn(1<<24))&^63,
		}, true
	}
	return isa.Inst{PC: 0x9004 + uint64(4*(i%16)), Op: isa.OpFMA, Dst: isa.Reg(2 + i%6)}, true
}

func main() {
	// Sample only three events: SPIRE happily works with whatever
	// counters the hardware (here: the simulator) exposes. The load-miss
	// counter plays the role of our "dma_descriptors" metric.
	events := []pmu.EventID{pmu.EvLoadL1Miss, pmu.EvStallsTotal, pmu.EvBrMispRetired}

	// Train across burst intensities so the roofline sees a wide
	// operational-intensity range.
	var train core.Dataset
	for _, compute := range []int{4, 16, 64, 256, 1024} {
		k := &dmaKernel{bursts: 400, burstSz: 8, compute: compute}
		s, err := sim.New(uarch.Default(), k, int64(compute))
		if err != nil {
			log.Fatal(err)
		}
		data, rep, err := perfstat.Collect(s, k.Name(), perfstat.Options{
			Events:         events,
			IntervalCycles: 10_000,
			MaxCycles:      2_000_000,
			Multiplex:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compute/burst %4d: IPC %.2f, %d samples\n", compute, rep.IPC, data.Len())
		train.Merge(data)
	}

	model, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		log.Fatal(err)
	}

	// Inspect the learned roofline for the descriptor metric: IPC should
	// rise with instructions-per-miss (fewer descriptor stalls).
	metric := pmu.Describe(pmu.EvLoadL1Miss).Name
	r := model.Rooflines[metric]
	if r == nil {
		log.Fatalf("no roofline for %s", metric)
	}
	fmt.Printf("\nlearned roofline for %s: peak (%.3g, %.3g), %d left / %d right breakpoints\n",
		metric, r.Peak().X, r.Peak().Y, len(r.Left), len(r.Right))

	curve := report.Series{Name: "bound"}
	for i := 1; i <= 60; i++ {
		x := r.Peak().X * 1.5 * float64(i) / 60
		curve.X = append(curve.X, x)
		curve.Y = append(curve.Y, r.Eval(x))
	}
	if err := report.AsciiPlot(os.Stdout, 64, 12, curve); err != nil {
		log.Fatal(err)
	}

	// Query the bound directly for a hypothetical workload.
	for _, ipm := range []float64{2, 10, 50} {
		p, err := model.Estimate1(metric, ipm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("at %3.0f instructions/descriptor-miss, attainable IPC <= %.2f\n", ipm, p)
	}
}
