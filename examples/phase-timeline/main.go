// Phase-timeline: SPIRE applied per collection window instead of per run.
// The paper warns that over- or under-represented execution phases skew a
// whole-run analysis (§III-A); estimating each sampling window separately
// exposes the phases and their individual bottlenecks.
//
// The workload here alternates between a DRAM-streaming phase and a
// divider-bound compute phase; the timeline should show the binding
// metric flipping between a memory event and a core event.
package main

import (
	"fmt"
	"log"
	"os"

	"spire/internal/analysis"
	"spire/internal/core"
	"spire/internal/isa"
	"spire/internal/perfstat"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// paperMetrics restricts sampling to the paper's Table III events, which
// keeps the timeline readable (the full registry also contains raw
// unit-total counters that SPIRE will happily rank).
func paperMetrics() []pmu.EventID {
	var ids []pmu.EventID
	for _, ev := range pmu.PaperTableEvents() {
		ids = append(ids, ev.ID)
	}
	return ids
}

// phased alternates memory and compute phases of phaseLen instructions.
type phased struct {
	n, phaseLen int
	pos         int
}

func (p *phased) Name() string     { return "phased" }
func (p *phased) Reset(seed int64) { p.pos = 0 }
func (p *phased) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	i := p.pos
	p.pos++
	if (i/p.phaseLen)%2 == 0 {
		// Memory phase: streaming DRAM loads.
		if i%2 == 0 {
			addr := 0x4000_0000 + uint64(i)*64%(128<<20)
			return isa.Inst{PC: 0x1000, Op: isa.OpLoad, Dst: isa.Reg(1 + i%4), Size: 8, Addr: addr}, true
		}
		return isa.Inst{PC: 0x1004, Op: isa.OpIntALU, Dst: 2}, true
	}
	// Compute phase: a divider chain.
	if i%4 == 0 {
		return isa.Inst{PC: 0x2000, Op: isa.OpFPDiv, Dst: 9, Src1: 9}, true
	}
	return isa.Inst{PC: 0x2004 + uint64(4*(i%4)), Op: isa.OpFPMul, Dst: isa.Reg(10 + i%4)}, true
}

func main() {
	// Train a model on a handful of suite workloads spanning the space.
	var train core.Dataset
	for _, name := range []string{"remhos", "qmcpack", "graph500", "scikit-featexp", "arrayfire-blas", "faiss-sift1m"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sim.New(uarch.Default(), spec.Build(0.1), 11)
		if err != nil {
			log.Fatal(err)
		}
		d, _, err := perfstat.Collect(s, name, perfstat.Options{
			Events:         paperMetrics(),
			IntervalCycles: 25_000, MaxCycles: 1_500_000, Multiplex: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		train.Merge(d)
	}
	model, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		log.Fatal(err)
	}

	// Measure the phased workload with window tagging.
	prog := &phased{n: 200_000, phaseLen: 25_000}
	s, err := sim.New(uarch.Default(), prog, 11)
	if err != nil {
		log.Fatal(err)
	}
	data, rep, err := perfstat.Collect(s, prog.Name(), perfstat.Options{
		Events:         paperMetrics(),
		IntervalCycles: 30_000, MaxCycles: 4_000_000, Multiplex: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phased workload: IPC %.2f over %d windows\n\n", rep.IPC, rep.Intervals)

	tl, err := analysis.Timeline(model, data)
	if err != nil {
		log.Fatal(err)
	}
	if err := analysis.RenderTimeline(os.Stdout, tl); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpect the binding metric to alternate between memory and core events")
}
