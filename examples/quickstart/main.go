// Quickstart: train a SPIRE ensemble from raw counter samples and rank
// bottleneck candidates for a new workload — no simulator involved, just
// the core model API (paper §III).
//
// The scenario: a machine with two counters, "stalls" (negatively
// associated with performance) and "cache_hits" (positively associated).
// Training samples sweep each metric's operational intensity; the analyzed
// workload stalls heavily, so SPIRE should rank "stalls" first.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/report"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. Collect training samples. Each sample is (metric, T, W, M):
	//    a period of T cycles in which W instructions retired and the
	//    metric increased by M. Throughput P = W/T rises with
	//    instructions-per-stall and falls as cache hits get rarer.
	var train core.Dataset
	for i := 0; i < 400; i++ {
		T := 1000.0
		// Stalls: IPC improves with I = W/M, saturating near 3.0.
		iStall := 1 + rng.Float64()*49 // instructions per stall
		ipc := 3.0 * iStall / (iStall + 8)
		w := ipc * T
		train.Add(core.Sample{Metric: "stalls", T: T, W: w, M: w / iStall})

		// Cache hits: performance needs frequent hits, so IPC drops as
		// instructions-per-hit grows.
		iHit := 1 + rng.Float64()*19
		ipcHit := 3.2 / (1 + 0.15*iHit)
		w2 := ipcHit * T
		train.Add(core.Sample{Metric: "cache_hits", T: T, W: w2, M: w2 / iHit})
	}

	// 2. Train: one piecewise-linear roofline per metric.
	model, err := core.Train(train, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d rooflines from %d samples\n\n", len(model.Rooflines), train.Len())

	// 3. Measure a workload: it stalls every 3 instructions (bad) but
	//    hits the cache every 2 instructions (fine).
	var workload core.Dataset
	for i := 0; i < 20; i++ {
		T, W := 1000.0, 900.0
		workload.Add(
			core.Sample{Metric: "stalls", T: T, W: W, M: W / 3},
			core.Sample{Metric: "cache_hits", T: T, W: W, M: W / 2},
		)
	}

	// 4. Estimate and rank on the shared engine: the lowest per-metric
	//    estimate is the likely bottleneck (paper Fig. 4).
	est, err := engine.Default().Estimate(context.Background(), model, workload, core.EstimateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured IPC: %.2f\n", est.MeasuredThroughput)
	fmt.Printf("SPIRE attainable-IPC estimate: %.2f\n\n", est.MaxThroughput)

	t := report.Table{
		Title:   "Bottleneck ranking (lowest estimate = most likely bottleneck)",
		Headers: []string{"Rank", "Metric", "Mean estimate", "Mean intensity"},
	}
	for i, m := range est.PerMetric {
		t.AddRow(fmt.Sprintf("%d", i+1), m.Metric,
			fmt.Sprintf("%.2f", m.MeanEstimate), fmt.Sprintf("%.2f", m.MeanIntensity))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if est.PerMetric[0].Metric == "stalls" {
		fmt.Println("\n-> stalls correctly identified as the binding constraint")
	}
}
