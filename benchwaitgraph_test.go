package spire_test

// Off-CPU analysis benchmarks and their regression gate (`make
// bench-gate` via the TestBenchGate prefix): wait-for graph construction
// from the lock-convoy MT kernel's event stream, and the full combined
// partition-and-rank pass on top of a roofline estimation. Recorded
// trajectory lives in BENCH_waitgraph.json; unlike the columnar core
// these paths allocate by design (maps, sorted slices), so the gate
// holds allocations to the recorded ceiling instead of zero.

import (
	"encoding/json"
	"os"
	"testing"

	"spire/internal/analysis"
	"spire/internal/core"
	"spire/internal/waitgraph"
	"spire/internal/workloads"
)

// waitgraphBenchEvents runs the lock-convoy kernel once and returns its
// deterministic scheduler-event stream.
func waitgraphBenchEvents(tb testing.TB) []core.SchedEvent {
	spec, err := workloads.MTByName("lock-convoy")
	if err != nil {
		tb.Fatal(err)
	}
	events, _, err := spec.Run()
	if err != nil {
		tb.Fatal(err)
	}
	return events
}

// waitgraphBenchEstimation is a small fixed roofline ranking for the
// combined pass to merge with the wait verdicts.
func waitgraphBenchEstimation() *core.Estimation {
	return &core.Estimation{
		PerMetric: []core.MetricEstimate{
			{Metric: "llc.miss", MeanEstimate: 2, Samples: 64, MeanIntensity: 1},
			{Metric: "dram.bw", MeanEstimate: 4, Samples: 64, MeanIntensity: 1},
			{Metric: "branch.mispredict", MeanEstimate: 6, Samples: 64, MeanIntensity: 1},
		},
		MaxThroughput: 2,
	}
}

// BenchmarkWaitGraphBuild measures wait-for graph construction alone:
// the event replay, edge aggregation, and per-thread partition.
func BenchmarkWaitGraphBuild(b *testing.B) {
	events := waitgraphBenchEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := waitgraph.Build(events)
		if len(g.Threads) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkCombinedRanking measures the full off-CPU analysis a serving
// request pays: graph build, knot detection, verdicts, and the merged
// roofline+wait ranking.
func BenchmarkCombinedRanking(b *testing.B) {
	events := waitgraphBenchEvents(b)
	est := waitgraphBenchEstimation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := analysis.Combine(est, events)
		if err != nil || rep == nil {
			b.Fatalf("combine: %v", err)
		}
	}
}

// TestBenchGateWaitgraph holds both off-CPU benchmarks to the recording
// in BENCH_waitgraph.json: best-of-3 ns/op within the recorded
// tolerance, allocs/op at or below the recorded ceiling (allocation
// counts here are deterministic for a fixed event stream).
func TestBenchGateWaitgraph(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 (make bench-gate) to run the benchmark regression gate")
	}
	raw, err := os.ReadFile("BENCH_waitgraph.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}

	events := waitgraphBenchEvents(t)
	est := waitgraphBenchEstimation()
	cases := []struct {
		name string
		op   func() error
	}{
		{"BenchmarkWaitGraphBuild", func() error {
			waitgraph.Build(events)
			return nil
		}},
		{"BenchmarkCombinedRanking", func() error {
			_, err := analysis.Combine(est, events)
			return err
		}},
	}
	for _, tc := range cases {
		base, ok := rec.Benchmarks[tc.name]
		if !ok {
			t.Fatalf("BENCH_waitgraph.json has no entry for %s", tc.name)
		}
		const runsN = 3
		bestNs, bestAllocs := 0.0, 0.0
		for i := 0; i < runsN; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					if err := tc.op(); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.NsPerOp())
			allocs := float64(r.AllocsPerOp())
			if i == 0 || ns < bestNs {
				bestNs = ns
			}
			if i == 0 || allocs < bestAllocs {
				bestAllocs = allocs
			}
			t.Logf("%s run %d: %.0f ns/op, %.0f allocs/op (N=%d)", tc.name, i+1, ns, allocs, r.N)
		}
		limit := base.NsPerOp * (1 + rec.Gate.NsPerOpMaxRegression)
		t.Logf("%s gate: best %.0f ns/op vs recorded %.0f (limit %.0f), best %.0f allocs/op (ceiling %.0f)",
			tc.name, bestNs, base.NsPerOp, limit, bestAllocs, base.AllocsPerOp)
		if bestNs > limit {
			t.Errorf("%s regressed: best-of-%d %.0f ns/op exceeds %.0f (recorded %.0f + %.0f%% tolerance)",
				tc.name, runsN, bestNs, limit, base.NsPerOp, rec.Gate.NsPerOpMaxRegression*100)
		}
		if bestAllocs > base.AllocsPerOp {
			t.Errorf("%s allocates more: best-of-%d %.0f allocs/op, recorded ceiling %.0f",
				tc.name, runsN, bestAllocs, base.AllocsPerOp)
		}
	}
}
