module spire

go 1.22
