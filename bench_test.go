// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV-V), plus the ablation studies from DESIGN.md §7 and
// micro-benchmarks of the core algorithms.
//
// Each experiment benchmark reports its headline quantities via
// b.ReportMetric so that `go test -bench=.` doubles as the reproduction
// log: e.g. BenchmarkTable2TopMetrics reports per-workload SPIRE/TMA
// agreement, BenchmarkSamplingOverhead the mean/max overhead fractions.
//
// The expensive part — simulating all 27 workloads and training the
// ensemble — runs once per process (shared session, reduced scale) and is
// excluded from the timed region.
package spire_test

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"spire/internal/analysis"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/experiments"
	"spire/internal/geom"
	"spire/internal/isa"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/trace"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

var (
	benchOnce sync.Once
	benchSess *experiments.Session
)

// benchSession builds (once) the shared reduced-scale pipeline: all 27
// workloads simulated, sampled, and the ensemble trained.
func benchSession(b testing.TB) *experiments.Session {
	b.Helper()
	benchOnce.Do(func() {
		benchSess = experiments.NewSession(experiments.QuickConfig())
	})
	// Force the memoized state so no benchmark times the warmup.
	if _, err := benchSess.Ensemble(); err != nil {
		b.Fatal(err)
	}
	if _, err := benchSess.TestRuns(); err != nil {
		b.Fatal(err)
	}
	return benchSess
}

// BenchmarkTable1Workloads regenerates Table I: the TMA classification of
// all 27 workloads. Reports how many match their engineered bottleneck.
func BenchmarkTable1Workloads(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var match, total int
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		match, total = 0, 0
		for _, r := range rows {
			if r.Expected == pmu.AreaRetiring {
				continue
			}
			total++
			if r.Main == r.Expected {
				match++
			}
		}
	}
	b.ReportMetric(float64(match), "matched")
	b.ReportMetric(float64(total), "classified")
}

// BenchmarkTable2TopMetrics regenerates Table II: SPIRE's top-10 metrics
// for the four test workloads. Reports the mean fraction of top metrics
// sharing TMA's main bottleneck area and the mean estimate/measured IPC
// ratio.
func BenchmarkTable2TopMetrics(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var agree, ratio float64
	for i := 0; i < b.N; i++ {
		cols, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		agree, ratio = 0, 0
		for _, c := range cols {
			agree += c.FracMatchingTMA
			if c.MeasuredIPC > 0 {
				ratio += c.SpireEstimate / c.MeasuredIPC
			}
		}
		agree /= float64(len(cols))
		ratio /= float64(len(cols))
	}
	b.ReportMetric(agree, "tma-agreement")
	b.ReportMetric(ratio, "est/measured")
}

// BenchmarkFig2Roofline regenerates the classic-roofline figure and
// reports the two apps' operational intensities.
func BenchmarkFig2Roofline(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var memI, compI float64
	for i := 0; i < b.N; i++ {
		fig, err := s.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range fig.Apps {
			if a.Name == "onnx" {
				memI = a.Intensity
			} else {
				compI = a.Intensity
			}
		}
	}
	b.ReportMetric(memI, "onnx-I")
	b.ReportMetric(compI, "blas-I")
}

// BenchmarkFig5LeftFit regenerates the left-region fitting walkthrough.
func BenchmarkFig5LeftFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Roofline.Left) == 0 {
			b.Fatal("empty fit")
		}
	}
}

// BenchmarkFig6RightFit regenerates the right-region fitting walkthrough
// and reports the optimal fit's total squared error.
func BenchmarkFig6RightFit(b *testing.B) {
	var sq float64
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		sq = d.TotalSquaredError
	}
	b.ReportMetric(sq, "sq-error")
}

// BenchmarkFig7LearnedRooflines regenerates the learned-roofline plots
// for BP.1 and DB.2 and reports their peak bounds.
func BenchmarkFig7LearnedRooflines(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var bp1Peak, db2Peak float64
	for i := 0; i < b.N; i++ {
		figs, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		bp1Peak = figs[0].Roofline.Peak().Y
		db2Peak = figs[1].Roofline.Peak().Y
	}
	b.ReportMetric(bp1Peak, "bp1-peak-ipc")
	b.ReportMetric(db2Peak, "db2-peak-ipc")
}

// BenchmarkSamplingOverhead regenerates the §IV overhead numbers (paper:
// 1.6% average, 4.6% max).
func BenchmarkSamplingOverhead(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var mean, max float64
	for i := 0; i < b.N; i++ {
		oh, err := s.Overhead()
		if err != nil {
			b.Fatal(err)
		}
		mean, max = oh.Mean, oh.Max
	}
	b.ReportMetric(100*mean, "mean-%")
	b.ReportMetric(100*max, "max-%")
}

// --- ablations (DESIGN.md §7) ------------------------------------------

// BenchmarkAblationTWA compares time-weighted vs unweighted merging.
func BenchmarkAblationTWA(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationTWA()
		if err != nil {
			b.Fatal(err)
		}
		overlap = 0
		for _, r := range res {
			overlap += r.OverlapTop10
		}
		overlap /= float64(len(res))
	}
	b.ReportMetric(overlap, "top10-overlap")
}

// BenchmarkAblationEnsembleReduction compares min vs mean reduction.
func BenchmarkAblationEnsembleReduction(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var minR, meanR float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationEnsembleReduction()
		if err != nil {
			b.Fatal(err)
		}
		minR, meanR = 0, 0
		for _, r := range res {
			minR += r.MinRatio
			meanR += r.MeanRatio
		}
		minR /= float64(len(res))
		meanR /= float64(len(res))
	}
	b.ReportMetric(minR, "min/measured")
	b.ReportMetric(meanR, "mean/measured")
}

// BenchmarkAblationMultiplex compares multiplexed vs oracle sampling.
func BenchmarkAblationMultiplex(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationMultiplex()
		if err != nil {
			b.Fatal(err)
		}
		overlap = 0
		for _, r := range res {
			overlap += r.OverlapTop10
		}
		overlap /= float64(len(res))
	}
	b.ReportMetric(overlap, "top10-overlap")
}

// BenchmarkAblationTrainingSize sweeps the training-set size.
func BenchmarkAblationTrainingSize(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var small, full float64
	for i := 0; i < b.N; i++ {
		pts, err := s.AblationTrainingSize([]int{4, 23})
		if err != nil {
			b.Fatal(err)
		}
		small, full = pts[0].MeanOverlapTop10, pts[1].MeanOverlapTop10
	}
	b.ReportMetric(small, "overlap@4")
	b.ReportMetric(full, "overlap@23")
}

// BenchmarkAblationRightFitGreedy compares the Dijkstra right fit's
// squared error against the greedy alternative on random fronts.
func BenchmarkAblationRightFitGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	fronts := make([][]geom.Point, 50)
	for i := range fronts {
		n := 4 + rng.Intn(12)
		front := make([]geom.Point, n)
		x, y := 1.0, 100.0
		for j := 0; j < n; j++ {
			x += 0.5 + rng.Float64()*3
			y *= 0.4 + rng.Float64()*0.55
			front[j] = geom.Point{X: x, Y: y}
		}
		fronts[i] = front
	}
	b.ResetTimer()
	var dijkstraWins int
	for i := 0; i < b.N; i++ {
		dijkstraWins = 0
		for _, front := range fronts {
			var samples []core.Sample
			for _, p := range front {
				samples = append(samples, core.Sample{Metric: "m", T: 1, W: p.Y, M: p.Y / p.X})
			}
			r, err := core.FitRoofline("m", samples)
			if err != nil {
				b.Fatal(err)
			}
			if experiments.RightFitError(r, front) < experiments.GreedyRightFit(front)-1e-9 {
				dijkstraWins++
			}
		}
	}
	b.ReportMetric(float64(dijkstraWins), "strict-wins/50")
}

// --- micro-benchmarks ---------------------------------------------------

// BenchmarkFitRoofline times fitting one metric roofline on 3k samples
// (the paper's per-metric training volume).
func BenchmarkFitRoofline(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]core.Sample, 3000)
	for i := range samples {
		iX := math1p(rng.ExpFloat64() * 20)
		p := 4 * iX / (iX + 10) * (0.7 + 0.3*rng.Float64())
		w := p * 1000
		samples[i] = core.Sample{Metric: "m", T: 1000, W: w, M: w / iX}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitRoofline("m", samples); err != nil {
			b.Fatal(err)
		}
	}
}

func math1p(x float64) float64 { return 1 + x }

// BenchmarkEnsembleEstimate times a full workload estimation against the
// trained ensemble.
func BenchmarkEnsembleEstimate(b *testing.B) {
	s := benchSession(b)
	ens, err := s.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	data := runs[0].Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ens.Estimate(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRepeatedEstimate times the steady-state serve/watch
// pattern: the same workload estimated repeatedly through the unified
// engine, whose content-hash index cache and pooled scratch turn the
// per-call cost into (cached index lookup + pooled evaluation). Compare
// allocs/op against BenchmarkEnsembleEstimate, which re-indexes every
// call; BENCH_engine.json records the gap.
func BenchmarkEngineRepeatedEstimate(b *testing.B) {
	s := benchSession(b)
	ens, err := s.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	data := runs[0].Data
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	// Warm the index cache once — steady state is what serve/watch see.
	if _, err := eng.Estimate(ctx, ens, data, core.EstimateOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Estimate(ctx, ens, data, core.EstimateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainingDataset concatenates every sample (training + test
// workloads) from the shared session for the parallel-training benchmark.
func benchTrainingDataset(b *testing.B) core.Dataset {
	b.Helper()
	s := benchSession(b)
	data, err := s.TrainingDataset()
	if err != nil {
		b.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range runs {
		data.Merge(r.Data)
	}
	return data
}

// BenchmarkTrainParallel times parallel ensemble training (Workers = 0 ⇒
// GOMAXPROCS) on the full-session dataset and reports the speedup over a
// serial fit measured in the same process.
func BenchmarkTrainParallel(b *testing.B) {
	data := benchTrainingDataset(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TrainContext(ctx, data, core.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	parallelPerOp := b.Elapsed() / time.Duration(b.N)
	serialStart := time.Now()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TrainContext(ctx, data, core.TrainOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	serialPerOp := time.Since(serialStart) / time.Duration(b.N)
	if parallelPerOp > 0 {
		b.ReportMetric(float64(serialPerOp)/float64(parallelPerOp), "speedup-vs-serial")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkBatchEstimate times the steady-state columnar estimation hot
// path — pre-indexed workload, flattened segment tables, inline serial
// merge, one reused Estimation — and reports the speedup over the naive
// index-and-estimate-per-call path. This is the loop a saturated
// `spire serve` or stream re-estimation runs per request, and it must
// stay at 0 allocs/op (`make bench-gate` enforces both dimensions
// against BENCH_core_columnar.json).
func BenchmarkBatchEstimate(b *testing.B) {
	s := benchSession(b)
	ens, err := s.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	data := runs[0].Data
	ix := core.IndexWorkload(data)
	ctx := context.Background()
	var est core.Estimation
	opts := core.EstimateOptions{Workers: 1}
	// Warm the reused Estimation's slice capacities once.
	if err := ens.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ens.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	batchPerOp := b.Elapsed() / time.Duration(b.N)
	naiveStart := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := ens.Estimate(data); err != nil {
			b.Fatal(err)
		}
	}
	naivePerOp := time.Since(naiveStart) / time.Duration(b.N)
	if batchPerOp > 0 {
		b.ReportMetric(float64(naivePerOp)/float64(batchPerOp), "speedup-vs-naive")
	}
}

// BenchmarkBatchEstimateParallel is the same workload through the
// concurrent per-metric path (Workers = GOMAXPROCS, fresh Estimation per
// call) — the shape engine.EstimateIndexed drives.
func BenchmarkBatchEstimateParallel(b *testing.B) {
	s := benchSession(b)
	ens, err := s.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	ix := core.IndexWorkload(runs[0].Data)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ens.BatchEstimate(ctx, ix, core.EstimateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// hierarchicalEnsemble attaches the default four-level hierarchy and
// the two calibration surfaces to the session ensemble, sharing the
// fitted rooflines (the hierarchy is evaluation-time metadata).
func hierarchicalEnsemble(ens *core.Ensemble) *core.Ensemble {
	return &core.Ensemble{
		Rooflines: ens.Rooflines,
		WorkUnit:  ens.WorkUnit,
		TimeUnit:  ens.TimeUnit,
		Hierarchy: &core.HierarchyModel{
			Levels: core.DefaultHierarchyLevels(),
			Surfaces: []core.Surface{
				{Name: "sparsity", Param: "br_misp_retired.all_branches", Points: []core.SurfacePoint{
					{Param: 0, Ceiling: 4}, {Param: 0.02, Ceiling: 3.1}, {Param: 0.1, Ceiling: 1.8},
				}},
				{Name: "vec-width-mix", Param: "uops_issued.vector_width_mismatch", Points: []core.SurfacePoint{
					{Param: 0, Ceiling: 4}, {Param: 0.05, Ceiling: 2.6}, {Param: 0.25, Ceiling: 1.2},
				}},
			},
		},
	}
}

// BenchmarkHierarchicalEstimate is BenchmarkBatchEstimate's workload
// through a model carrying the four-level hierarchy and both surfaces:
// the same columnar steady state (caller-held index, reused Estimation,
// Workers=1) plus the binding-level and surface evaluation on every op.
// `make bench-gate` holds it to 0 allocs/op and within 20% of the flat
// BENCH_core_columnar.json recording (see BENCH_hierarchy.json).
func BenchmarkHierarchicalEstimate(b *testing.B) {
	s := benchSession(b)
	ens, err := s.Ensemble()
	if err != nil {
		b.Fatal(err)
	}
	hier := hierarchicalEnsemble(ens)
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	ix := core.IndexWorkload(runs[0].Data)
	ctx := context.Background()
	var est core.Estimation
	opts := core.EstimateOptions{Workers: 1}
	if err := hier.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
		b.Fatal(err)
	}
	if est.Hierarchy == nil {
		b.Fatal("session workload did not produce a hierarchical verdict")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hier.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation speed in cycles/op on a
// mixed workload.
func BenchmarkSimulator(b *testing.B) {
	spec, err := workloads.ByName("fftw")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s, err := sim.New(uarch.Default(), spec.Build(0.05), 1)
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run(50_000_000)
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

// BenchmarkAblationMicrobenchTraining compares application-trained and
// microbenchmark-trained models (the paper's two training regimes).
func BenchmarkAblationMicrobenchTraining(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationMicrobenchTraining()
		if err != nil {
			b.Fatal(err)
		}
		overlap = 0
		for _, r := range res {
			overlap += r.OverlapTop10
		}
		overlap /= float64(len(res))
	}
	b.ReportMetric(overlap, "top10-overlap")
}

// BenchmarkAblationPrefetcher measures the stride prefetcher's effect on
// streaming vs pointer-chasing workloads.
func BenchmarkAblationPrefetcher(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var stream, chase float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationPrefetcher()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.Workload {
			case "remhos":
				stream = r.Speedup
			case "faiss-sift1m":
				chase = r.Speedup
			}
		}
	}
	b.ReportMetric(stream, "stream-speedup")
	b.ReportMetric(chase, "chase-speedup")
}

// BenchmarkCrossValidation runs the leave-one-out generalization check
// and reports the violation rate and median bound tightness.
func BenchmarkCrossValidation(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var viol, median float64
	for i := 0; i < b.N; i++ {
		cv, err := s.CrossValidate(0.10)
		if err != nil {
			b.Fatal(err)
		}
		viol, median = cv.ViolationRate, cv.MedianRatio
	}
	b.ReportMetric(100*viol, "violations-%")
	b.ReportMetric(median, "median-ratio")
}

// BenchmarkAblationInterval sweeps the sampling interval and reports
// ranking stability at half and double the default.
func BenchmarkAblationInterval(b *testing.B) {
	s := benchSession(b)
	base := s.Cfg.IntervalCycles
	b.ResetTimer()
	var half, double float64
	for i := 0; i < b.N; i++ {
		pts, err := s.AblationInterval([]uint64{base / 2, base * 2})
		if err != nil {
			b.Fatal(err)
		}
		half, double = pts[0].MeanOverlapTop10, pts[1].MeanOverlapTop10
	}
	b.ReportMetric(half, "overlap@half")
	b.ReportMetric(double, "overlap@double")
}

// BenchmarkTraceCodec measures trace encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	spec, err := workloads.ByName("numenta-nab")
	if err != nil {
		b.Fatal(err)
	}
	p := spec.Build(0.1)
	p.Reset(1)
	insts := isa.Collect(p, 40000)
	b.ResetTimer()
	var bytesPerInst float64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.Write(&buf, insts); err != nil {
			b.Fatal(err)
		}
		encoded := buf.Len() // Read drains the buffer; measure first
		got, err := trace.Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(insts) {
			b.Fatal("length mismatch")
		}
		bytesPerInst = float64(encoded) / float64(len(insts))
	}
	b.ReportMetric(bytesPerInst, "bytes/inst")
}

// BenchmarkCorrelations measures the confounding detector over a full
// test-workload dataset.
func BenchmarkCorrelations(b *testing.B) {
	s := benchSession(b)
	runs, err := s.TestRuns()
	if err != nil {
		b.Fatal(err)
	}
	data := runs[0].Data
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		pairs = len(analysis.Correlations(data, 5, 0.95))
	}
	b.ReportMetric(float64(pairs), "pairs>=0.95")
}

// BenchmarkAblationSeeds measures ranking stability across random seeds.
func BenchmarkAblationSeeds(b *testing.B) {
	s := benchSession(b)
	b.ResetTimer()
	var stability float64
	for i := 0; i < b.N; i++ {
		res, err := s.AblationSeeds([]int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		stability = 0
		for _, r := range res {
			stability += r.MeanOverlapTop10
		}
		stability /= float64(len(res))
	}
	b.ReportMetric(stability, "seed-stability")
}
