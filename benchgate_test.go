package spire_test

// The benchmark regression gate behind `make bench-gate`: re-measures
// the columnar steady state (the timed region of BenchmarkBatchEstimate
// — reused Estimation, caller-held index, Workers=1) and compares it
// against the recording in BENCH_core_columnar.json. Allocations are
// compared exactly: the zero-allocation contract is binary, one alloc
// per op is a regression however fast it runs. Time gets the recorded
// tolerance, applied to the best of several runs so scheduler noise on
// a busy runner doesn't fail an honest build.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"spire/internal/core"
)

type benchRecording struct {
	Benchmarks map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
	Gate struct {
		Benchmark            string  `json:"benchmark"`
		NsPerOpMaxRegression float64 `json:"ns_per_op_max_regression"`
		AllocsPerOpMax       float64 `json:"allocs_per_op_max"`
	} `json:"gate"`
}

func TestBenchGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 (make bench-gate) to run the benchmark regression gate")
	}
	raw, err := os.ReadFile("BENCH_core_columnar.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	base, ok := rec.Benchmarks[rec.Gate.Benchmark]
	if !ok {
		t.Fatalf("recording has no entry for gate benchmark %q", rec.Gate.Benchmark)
	}

	s := benchSession(t)
	ens, err := s.Ensemble()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.TestRuns()
	if err != nil {
		t.Fatal(err)
	}
	ix := core.IndexWorkload(runs[0].Data)
	ctx := context.Background()
	opts := core.EstimateOptions{Workers: 1}
	var est core.Estimation
	if err := ens.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
		t.Fatal(err)
	}

	// Best of 3: the minimum over independent runs is the measurement
	// least polluted by preemption; allocs/op must be at the floor in
	// every run's best case too.
	const runsN = 3
	bestNs, bestAllocs := 0.0, 0.0
	for i := 0; i < runsN; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if err := ens.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		allocs := float64(r.AllocsPerOp())
		if i == 0 || ns < bestNs {
			bestNs = ns
		}
		if i == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
		t.Logf("run %d: %.0f ns/op, %.0f allocs/op (N=%d)", i+1, ns, allocs, r.N)
	}

	limit := base.NsPerOp * (1 + rec.Gate.NsPerOpMaxRegression)
	t.Logf("gate: best %.0f ns/op vs recorded %.0f (limit %.0f), best %.0f allocs/op (max %.0f)",
		bestNs, base.NsPerOp, limit, bestAllocs, rec.Gate.AllocsPerOpMax)
	if bestNs > limit {
		t.Errorf("%s regressed: best-of-%d %.0f ns/op exceeds %.0f (recorded %.0f + %.0f%% tolerance)",
			rec.Gate.Benchmark, runsN, bestNs, limit, base.NsPerOp, rec.Gate.NsPerOpMaxRegression*100)
	}
	if bestAllocs > rec.Gate.AllocsPerOpMax {
		t.Errorf("%s allocates: best-of-%d %.0f allocs/op, want <= %.0f — the zero-allocation steady state is broken",
			rec.Gate.Benchmark, runsN, bestAllocs, rec.Gate.AllocsPerOpMax)
	}
}

// TestBenchGateHierarchy holds the hierarchical estimation steady state
// (BenchmarkHierarchicalEstimate: same columnar loop plus binding-level
// resolution and surface evaluation per op) to the flat recording in
// BENCH_core_columnar.json — the hierarchy must ride the hot path within
// the recorded tolerance and without allocating. BENCH_hierarchy.json
// documents the recorded trajectory point.
func TestBenchGateHierarchy(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 (make bench-gate) to run the benchmark regression gate")
	}
	raw, err := os.ReadFile("BENCH_core_columnar.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecording
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	base, ok := rec.Benchmarks["BenchmarkBatchEstimate"]
	if !ok {
		t.Fatal("recording has no BenchmarkBatchEstimate entry")
	}

	s := benchSession(t)
	ens, err := s.Ensemble()
	if err != nil {
		t.Fatal(err)
	}
	hier := hierarchicalEnsemble(ens)
	runs, err := s.TestRuns()
	if err != nil {
		t.Fatal(err)
	}
	ix := core.IndexWorkload(runs[0].Data)
	ctx := context.Background()
	opts := core.EstimateOptions{Workers: 1}
	var est core.Estimation
	if err := hier.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy == nil {
		t.Fatal("session workload did not produce a hierarchical verdict")
	}

	const runsN = 3
	bestNs, bestAllocs := 0.0, 0.0
	for i := 0; i < runsN; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if err := hier.BatchEstimateInto(ctx, ix, opts, &est); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		allocs := float64(r.AllocsPerOp())
		if i == 0 || ns < bestNs {
			bestNs = ns
		}
		if i == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
		t.Logf("run %d: %.0f ns/op, %.0f allocs/op (N=%d)", i+1, ns, allocs, r.N)
	}

	limit := base.NsPerOp * (1 + rec.Gate.NsPerOpMaxRegression)
	t.Logf("gate: best %.0f ns/op vs flat recording %.0f (limit %.0f), best %.0f allocs/op (max 0)",
		bestNs, base.NsPerOp, limit, bestAllocs)
	if bestNs > limit {
		t.Errorf("BenchmarkHierarchicalEstimate regressed: best-of-%d %.0f ns/op exceeds %.0f (flat recording %.0f + %.0f%% tolerance)",
			runsN, bestNs, limit, base.NsPerOp, rec.Gate.NsPerOpMaxRegression*100)
	}
	if bestAllocs > 0 {
		t.Errorf("BenchmarkHierarchicalEstimate allocates: best-of-%d %.0f allocs/op — the hierarchy broke the zero-allocation steady state",
			runsN, bestAllocs)
	}
}
