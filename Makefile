GO ?= go

# Minimum statement coverage for the model-fitting core.
CORE_COVER_FLOOR ?= 85.0
# Minimum statement coverage for the estimation service.
SERVE_COVER_FLOOR ?= 80.0
# Minimum statement coverage for the streaming pipeline.
STREAM_COVER_FLOOR ?= 85.0
# Minimum statement coverage for the cluster routing tier.
CLUSTER_COVER_FLOOR ?= 85.0
# Minimum statement coverage for the hierarchical roofline geometry and
# its kernel roster.
ROOFLINE_COVER_FLOOR ?= 85.0
# Minimum statement coverage for the wait-for graph and the combined
# on/off-CPU analysis built on it.
WAITGRAPH_COVER_FLOOR ?= 85.0

.PHONY: all build test vet lint race cover cover-serve cover-stream cover-cluster cover-roofline cover-waitgraph smoke fuzz fuzz-short chaos chaos-cluster bench-gate verify clean

# Pinned linter versions, fetched on demand with `go run`. In an offline
# environment (no module proxy) lint degrades to a warning + skip, so the
# verify gate stays runnable anywhere; genuine findings still fail it.
STATICCHECK_VERSION ?= honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK_VERSION ?= golang.org/x/vuln/cmd/govulncheck@v1.1.3

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package so
# order-dependent tests fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck and govulncheck at pinned
# versions. Tool-fetch failures (offline container, proxy outage) are
# detected and skipped; analysis findings fail.
lint:
	@out=$$($(GO) run $(STATICCHECK_VERSION) ./... 2>&1); status=$$?; \
	if [ $$status -ne 0 ] && echo "$$out" | grep -Eq 'no such host|connection refused|i/o timeout|dial tcp|proxyconnect|TLS handshake|Get "https?://|no required module provides|cannot find module|missing go.sum entry'; then \
		echo "lint: staticcheck unavailable offline, skipping:"; echo "$$out" | head -3; \
	elif [ $$status -ne 0 ]; then \
		echo "$$out"; exit $$status; \
	else \
		echo "staticcheck: ok"; [ -z "$$out" ] || echo "$$out"; \
	fi
	@out=$$($(GO) run $(GOVULNCHECK_VERSION) ./... 2>&1); status=$$?; \
	if [ $$status -ne 0 ] && echo "$$out" | grep -Eq 'no such host|connection refused|i/o timeout|dial tcp|proxyconnect|TLS handshake|Get "https?://|no required module provides|cannot find module|missing go.sum entry'; then \
		echo "lint: govulncheck unavailable offline, skipping:"; echo "$$out" | head -3; \
	elif [ $$status -ne 0 ]; then \
		echo "$$out"; exit $$status; \
	else \
		echo "govulncheck: ok"; \
	fi

race:
	$(GO) test -race ./...

# Coverage profiles land in the ignored cover/ directory, never the
# repo root.
cover/:
	@mkdir -p cover

# Coverage gate: internal/core must stay at or above CORE_COVER_FLOOR.
cover: | cover/
	$(GO) test -coverprofile=cover/coverage.out ./internal/core/
	@pct=$$($(GO) tool cover -func=cover/coverage.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/core coverage: $$pct% (floor $(CORE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(CORE_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/core coverage $$pct% is below the $(CORE_COVER_FLOOR)% floor"; exit 1; }

# Coverage gate for the serving tier.
cover-serve: | cover/
	$(GO) test -coverprofile=cover/coverage-serve.out ./internal/serve/
	@pct=$$($(GO) tool cover -func=cover/coverage-serve.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/serve coverage: $$pct% (floor $(SERVE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(SERVE_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/serve coverage $$pct% is below the $(SERVE_COVER_FLOOR)% floor"; exit 1; }

# Coverage gate for the streaming tier.
cover-stream: | cover/
	$(GO) test -coverprofile=cover/coverage-stream.out ./internal/stream/
	@pct=$$($(GO) tool cover -func=cover/coverage-stream.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/stream coverage: $$pct% (floor $(STREAM_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(STREAM_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/stream coverage $$pct% is below the $(STREAM_COVER_FLOOR)% floor"; exit 1; }

# Coverage gate for the cluster routing tier.
cover-cluster: | cover/
	$(GO) test -coverprofile=cover/coverage-cluster.out ./internal/cluster/
	@pct=$$($(GO) tool cover -func=cover/coverage-cluster.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/cluster coverage: $$pct% (floor $(CLUSTER_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(CLUSTER_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/cluster coverage $$pct% is below the $(CLUSTER_COVER_FLOOR)% floor"; exit 1; }

# Coverage gate for the hierarchical roofline geometry and the workload
# kernel roster that exercises it.
cover-roofline: | cover/
	$(GO) test -coverprofile=cover/coverage-roofline.out ./internal/roofline/ ./internal/workloads/
	@pct=$$($(GO) tool cover -func=cover/coverage-roofline.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/roofline+workloads coverage: $$pct% (floor $(ROOFLINE_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(ROOFLINE_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/roofline+workloads coverage $$pct% is below the $(ROOFLINE_COVER_FLOOR)% floor"; exit 1; }

# Coverage gate for the off-CPU analysis stack: the wait-for graph and
# the combined partition/ranking layer on top of it.
cover-waitgraph: | cover/
	$(GO) test -coverprofile=cover/coverage-waitgraph.out ./internal/waitgraph/ ./internal/analysis/
	@pct=$$($(GO) tool cover -func=cover/coverage-waitgraph.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/waitgraph+analysis coverage: $$pct% (floor $(WAITGRAPH_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(WAITGRAPH_COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/waitgraph+analysis coverage $$pct% is below the $(WAITGRAPH_COVER_FLOOR)% floor"; exit 1; }

# Black-box smoke: build the real binary, start `spire serve` (and a
# router in front of a shard), hit /healthz and one estimate over HTTP,
# check the version banner, and shut down cleanly on SIGTERM.
smoke:
	$(GO) test -run 'TestSmokeServe|TestSmokeRoute|TestSmokeVersion' -count=1 ./cmd/spire/

# Short fuzz pass over the perf-stat CSV parser; the checked-in seed
# corpus under internal/ingest/testdata/fuzz runs as part of plain
# `make test` too.
fuzz:
	$(GO) test -fuzz FuzzPerfStatCSV -fuzztime 30s ./internal/ingest/

# Quick fuzz smoke over every fuzz target (10s each): the batch and
# incremental ingest parsers, the roofline fitter, the parallel trainer,
# the model loader, the sliding-window merge, and the serving tier's
# estimate handler and model-upload decoder.
fuzz-short:
	$(GO) test -fuzz FuzzPerfStatCSV -fuzztime 10s ./internal/ingest/
	$(GO) test -fuzz FuzzStreamFeed -fuzztime 10s ./internal/ingest/
	$(GO) test -fuzz FuzzFitRoofline -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzTrainParallel -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzLoadEnsemble -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzWindowMerge -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzHierarchyEval -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzSurfaceParams -fuzztime 10s ./internal/core/
	$(GO) test -fuzz FuzzEstimateHandler -fuzztime 10s ./internal/serve/
	$(GO) test -fuzz FuzzModelDecode -fuzztime 10s ./internal/serve/
	$(GO) test -fuzz FuzzBinDecodeEstimate -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz FuzzBinRoundTrip -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz FuzzParseConfig -fuzztime 10s ./internal/cluster/
	$(GO) test -fuzz FuzzParseShardList -fuzztime 10s ./internal/cluster/
	$(GO) test -fuzz FuzzSchedEventParse -fuzztime 10s ./internal/ingest/
	$(GO) test -fuzz FuzzWaitGraphBuild -fuzztime 10s ./internal/waitgraph/

# Transport-level chaos soak under the race detector: retrying clients
# against a live server through the faultinject chaos transport and
# listener (stalls, resets, slow-loris, truncated frames), asserting
# bounded error rates, byte-identical successes, and exact admission
# accounting. Bounded -timeout so a hang fails fast instead of wedging CI.
chaos:
	$(GO) test -race -count=1 -timeout 300s -run 'TestChaos' ./internal/client/ ./internal/faultinject/

# Cluster soaks under the race detector: the kill/restart soak (abrupt
# shard deaths, empty-registry restarts, re-convergence) and the chaos
# soaks on the router<->shard hop (faultinject stalls, resets, truncated
# frames on relays, health probes, and model pushes).
chaos-cluster:
	$(GO) test -race -count=1 -timeout 300s -run 'TestChaosCluster|TestClusterKillRestartSoak' ./internal/cluster/

# Benchmark regression gate: re-measures the columnar steady state
# (BenchmarkBatchEstimate's timed region, best of 3) against the
# recording in BENCH_core_columnar.json — fails on >20% ns/op
# regression or any allocation per op.
bench-gate:
	BENCH_GATE=1 $(GO) test -run TestBenchGate -count=1 -timeout 600s .

# The full verification gate: build, static checks, tests, race tests,
# the coverage floors, the serving smoke, the chaos soak, a short fuzz
# smoke, and the benchmark regression gate.
verify: build vet lint test race cover cover-serve cover-stream cover-cluster cover-roofline cover-waitgraph smoke chaos chaos-cluster fuzz-short bench-gate

clean:
	$(GO) clean ./...
	rm -rf cover
	rm -f coverage.out coverage-serve.out coverage-stream.out
