GO ?= go

.PHONY: all build test vet race fuzz verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the perf-stat CSV parser; the checked-in seed
# corpus under internal/ingest/testdata/fuzz runs as part of plain
# `make test` too.
fuzz:
	$(GO) test -fuzz FuzzPerfStatCSV -fuzztime 30s ./internal/ingest/

# The full verification gate: build, static checks, tests, race tests.
verify: build vet test race

clean:
	$(GO) clean ./...
